"""Figure 3 — sorted color-class cardinality curves under balancing.

The paper plots, for V-N2 and N1-N2 on coPapersDBLP at 16 threads, the
color-class sizes sorted by cardinality (log scale) for the unbalanced run
and the B1/B2 runs.  The balanced curves are flatter: smaller head, fatter
tail, fewer near-empty classes.

We emit the decile profile of each curve (10 sampled points) plus summary
statistics; the full curves are returned in ``data`` for plotting.
"""

from __future__ import annotations

import numpy as np

from repro.bench.runner import run_algorithm
from repro.bench.tables import Experiment
from repro.core.metrics import sorted_cardinality_curve, tiny_class_count

__all__ = ["run"]

ALGS = ("V-N2", "N1-N2")
POLICIES = ("U", "B1", "B2")


def run(scale: str = "small", threads: int = 16, dataset: str = "copapers") -> Experiment:
    """Regenerate the Figure 3 cardinality curves."""
    rows = []
    curves: dict = {}
    for alg in ALGS:
        for pol in POLICIES:
            result = run_algorithm(dataset, alg, threads, scale, policy_name=pol)
            curve = sorted_cardinality_curve(result.colors)
            curves[f"{alg}-{pol}"] = curve
            deciles = [
                int(curve[min(curve.size - 1, int(q * curve.size))])
                for q in np.linspace(0.0, 0.9, 10)
            ]
            rows.append(
                (
                    f"{alg}-{pol}",
                    curve.size,
                    int(curve[0]),
                    *deciles[1:],
                    tiny_class_count(result.colors, 2),
                )
            )
    flatter = all(
        curves[f"{alg}-B2"][0] <= curves[f"{alg}-U"][0] for alg in ALGS
    )
    notes = (
        "Columns: #classes, then the cardinality at the 0th..90th percentile "
        "position of the sorted (descending) curve, then classes with < 2 "
        "vertices.\n"
        f"Shape (balanced head no larger than unbalanced head): "
        f"{'HOLDS' if flatter else 'VIOLATED'} "
        "(paper Fig. 3: B1/B2 curves are flatter than U)."
    )
    return Experiment(
        id="figure3",
        title=f"sorted color-class cardinalities on {dataset} "
        f"({threads} threads)",
        header=[
            "variant",
            "#classes",
            "max",
            "p10",
            "p20",
            "p30",
            "p40",
            "p50",
            "p60",
            "p70",
            "p80",
            "p90",
            "tiny(<2)",
        ],
        rows=rows,
        notes=notes,
        data={"curves": curves},
    )
