"""One module per paper table/figure; each exposes ``run(scale=...) -> Experiment``."""

from repro.bench.experiments import (
    adaptive,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    figure1,
    figure2,
    figure3,
    ablations,
    incremental,
    manycore,
    profile,
    scaling,
    serve,
    shards,
)

ALL_EXPERIMENTS = {
    "adaptive": adaptive.run,
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "figure1": figure1.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "ablations": ablations.run,
    "incremental": incremental.run,
    "manycore": manycore.run,
    "profile": profile.run,
    "scaling": scaling.run,
    "serve": serve.run,
    "shards": shards.run,
}

__all__ = ["ALL_EXPERIMENTS"]
