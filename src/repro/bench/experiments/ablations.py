"""Design-choice ablations beyond the paper's tables (DESIGN.md §5).

Each sweep isolates one design knob the paper (or our simulator
calibration) relies on:

* **chunk size** — dynamic-scheduling chunk ∈ {1, 16, 64, 256} for the
  vertex-based algorithm (the paper only contrasts 1 vs 64);
* **race window** — the simulator's store-visibility window vs conflict
  count (a pure-simulation knob; shows conflicts scale with optimism);
* **B2 restart floor** — the ``colmax/k`` divisor of Alg. 12 (the paper
  hard-codes k = 3);
* **net-removal horizon** — net-based removal for the first h iterations,
  h ∈ {0, 1, 2, 3, ∞} (the paper samples h ∈ {0, 1, 2, ∞});
* **balancing mechanism** — B1/B2 (online, free) vs the Lu et al.-style
  shuffle post-pass (flatter, but pays an extra two-hop sweep);
* **JP vs speculative** — the §VII contrast with the pre-speculative
  maximal-independent-set family (Jones–Plassmann);
* **distributed** — supersteps/colors/traffic of the partitioned
  superstep framework (Bozdağ et al.) the shared-memory work descends from;
* **orderings** — sequential colors under ColPack's ordering set;
* **distance-k** — the §VIII future-work extension: colors and first-round
  cost for k ∈ {1, 2, 3, 4} on a mesh instance.
"""

from __future__ import annotations

from repro.bench.tables import Experiment
from repro.core.bgpc import color_bgpc, sequential_bgpc
from repro.core.bgpc.runner import BGPCAdapter
from repro.core.driver import INF_ITERS, AlgorithmSpec, run_speculative
from repro.core.metrics import color_stats
from repro.core.policies import B2Policy
from repro.datasets.registry import load_dataset
from repro.machine.cost import CostModel
from repro.machine.engine import QUEUE_PRIVATE

__all__ = ["run"]

DATASET = "channel"


def _chunk_sweep(scale: str, threads: int, rows: list) -> None:
    bg = load_dataset(DATASET, scale)
    cost = CostModel()
    seq = sequential_bgpc(bg, cost=cost)
    for chunk in (1, 16, 64, 256):
        spec = AlgorithmSpec(f"V-V-{chunk}D", chunk=chunk, queue_mode=QUEUE_PRIVATE)
        adapter = BGPCAdapter(bg, cost)
        result = run_speculative(adapter, spec, threads=threads, cost=cost)
        rows.append(
            (
                "chunk-size",
                f"chunk={chunk}",
                round(seq.cycles / result.cycles, 2),
                result.num_colors,
                result.total_conflicts,
            )
        )


def _race_window_sweep(scale: str, threads: int, rows: list) -> None:
    bg = load_dataset(DATASET, scale)
    for window in (5, 15, 40, 100):
        cost = CostModel(race_window_pct=window)
        seq = sequential_bgpc(bg, cost=cost)
        result = color_bgpc(bg, algorithm="V-V-64D", threads=threads, cost=cost)
        rows.append(
            (
                "race-window",
                f"window={window}%",
                round(seq.cycles / result.cycles, 2),
                result.num_colors,
                result.total_conflicts,
            )
        )


class _B2WithDivisor(B2Policy):
    """B2 with a configurable restart floor ``colmax // divisor + 1``."""

    def __init__(self, divisor: int):
        self.divisor = divisor

    def choose(self, forbidden, key, state):
        colmax = state.get("colmax", 0)
        colnext = state.get("colnext", 0)
        col, steps = forbidden.first_fit(colnext)
        if col > colmax:
            col, more = forbidden.first_fit(0)
            steps += more
        if col > colmax:
            colmax = col
        state["colmax"] = colmax
        state["colnext"] = max(col + 1, colmax // self.divisor + 1)
        return col, steps


def _b2_divisor_sweep(scale: str, threads: int, rows: list) -> None:
    bg = load_dataset(DATASET, scale)
    for divisor in (2, 3, 5, 10):
        result = color_bgpc(
            bg,
            algorithm="V-N2",
            threads=threads,
            policy=_B2WithDivisor(divisor),
        )
        stats = color_stats(result.colors)
        rows.append(
            (
                "b2-divisor",
                f"colmax/{divisor}",
                round(result.cycles / 1e6, 2),
                stats.num_colors,
                round(stats.std, 1),
            )
        )


def _horizon_sweep(scale: str, threads: int, rows: list) -> None:
    bg = load_dataset(DATASET, scale)
    cost = CostModel()
    seq = sequential_bgpc(bg, cost=cost)
    for horizon in (0, 1, 2, 3, INF_ITERS):
        label = "inf" if horizon == INF_ITERS else str(horizon)
        spec = AlgorithmSpec(
            f"V-N{label}",
            chunk=64,
            queue_mode=QUEUE_PRIVATE,
            net_removal_iters=horizon,
        )
        adapter = BGPCAdapter(bg, cost)
        result = run_speculative(adapter, spec, threads=threads, cost=cost)
        rows.append(
            (
                "net-removal-horizon",
                f"h={label}",
                round(seq.cycles / result.cycles, 2),
                result.num_colors,
                result.total_conflicts,
            )
        )


def _balancing_mechanism_sweep(scale: str, threads: int, rows: list) -> None:
    from repro.core.balance import rebalance_shuffle
    from repro.core.policies import B1Policy, B2Policy

    bg = load_dataset(DATASET, scale)
    base = color_bgpc(bg, algorithm="V-N2", threads=threads)
    base_std = color_stats(base.colors).std
    rows.append(("balancing", "none (U)", 0.0, base.num_colors, round(base_std, 1)))
    for name, policy in (("B1", B1Policy()), ("B2", B2Policy())):
        result = color_bgpc(bg, algorithm="V-N2", threads=threads, policy=policy)
        stats = color_stats(result.colors)
        overhead = result.cycles - base.cycles
        rows.append(
            ("balancing", f"{name} (online)", round(overhead / 1e3, 1),
             stats.num_colors, round(stats.std, 1))
        )
    shuffled = rebalance_shuffle(bg, base.colors)
    stats = color_stats(shuffled.colors)
    rows.append(
        ("balancing", "shuffle (post)", round(shuffled.estimated_cycles / 1e3, 1),
         stats.num_colors, round(stats.std, 1))
    )


def _jp_baseline_sweep(scale: str, threads: int, rows: list) -> None:
    """Speculative vs Jones–Plassmann (the pre-speculative MIS family)."""
    from repro.core.jp import jones_plassmann_bgpc

    for dataset in (DATASET, "copapers"):
        bg = load_dataset(dataset, scale)
        cost = CostModel()
        seq = sequential_bgpc(bg, cost=cost)
        jp = jones_plassmann_bgpc(bg, threads=threads, cost=cost)
        spec = color_bgpc(bg, algorithm="N1-N2", threads=threads, cost=cost)
        rows.append(
            ("jp-vs-speculative", f"{dataset}: JP",
             round(seq.cycles / jp.cycles, 2), jp.num_colors,
             jp.num_iterations)
        )
        rows.append(
            ("jp-vs-speculative", f"{dataset}: N1-N2",
             round(seq.cycles / spec.cycles, 2), spec.num_colors,
             spec.num_iterations)
        )


def _ordering_sweep(scale: str, threads: int, rows: list) -> None:
    from repro.order import ORDERINGS, get_ordering

    bg = load_dataset(DATASET, scale)
    for name in sorted(ORDERINGS):
        order = None if name == "natural" else get_ordering(name)(bg)
        seq = sequential_bgpc(bg, order=order)
        rows.append(
            ("ordering", name, round(seq.cycles / 1e6, 2), seq.num_colors, "")
        )


def _distributed_sweep(scale: str, threads: int, rows: list) -> None:
    """The framework the paper descends from: partitioned superstep BGPC."""
    from repro.dist import distributed_bgpc, partition_random

    bg = load_dataset(DATASET, scale)
    for ranks in (2, 4, 8):
        result = distributed_bgpc(bg, ranks=ranks, batch=200)
        rows.append(
            ("distributed", f"ranks={ranks} block",
             result.supersteps, result.num_colors,
             round(result.comm_words / 1e3, 1))
        )
    scattered = distributed_bgpc(
        bg, ranks=4, batch=200,
        partition=partition_random(bg.num_vertices, 4, seed=9),
    )
    rows.append(
        ("distributed", "ranks=4 random",
         scattered.supersteps, scattered.num_colors,
         round(scattered.comm_words / 1e3, 1))
    )


def _distance_k_sweep(scale: str, threads: int, rows: list) -> None:
    from repro.core.distk import color_distk, sequential_distk
    from repro.datasets.registry import load_d2gc_dataset

    # Always the tiny mesh: radius-k balls grow like deg^k, so the sweep
    # stays comparable (and fast) across harness scales.
    g = load_d2gc_dataset("channel", "tiny")
    for k in (1, 2, 3, 4):
        seq = sequential_distk(g, k)
        alg = "N1-N2" if k % 2 == 0 else "V-V-64D"
        par = color_distk(g, k, algorithm=alg, threads=threads)
        rows.append(
            ("distance-k", f"k={k} ({alg})",
             round(seq.cycles / par.cycles, 2), par.num_colors,
             par.total_conflicts)
        )


def run(scale: str = "small", threads: int = 16) -> Experiment:
    """Run all design-choice ablation sweeps."""
    rows: list[tuple] = []
    _chunk_sweep(scale, threads, rows)
    _race_window_sweep(scale, threads, rows)
    _b2_divisor_sweep(scale, threads, rows)
    _horizon_sweep(scale, threads, rows)
    _balancing_mechanism_sweep(scale, threads, rows)
    _jp_baseline_sweep(scale, threads, rows)
    _distributed_sweep(scale, threads, rows)
    _ordering_sweep(scale, threads, rows)
    _distance_k_sweep(scale, threads, rows)
    notes = (
        "chunk-size / net-removal-horizon rows: speedup over sequential, "
        "colors, conflicts.\n"
        "race-window rows: conflicts grow with the visibility window "
        "(optimism damage).\n"
        "b2-divisor rows: Mcycles, colors, cardinality std — smaller divisor "
        "= higher restart floor = flatter classes.\n"
        "balancing rows: extra Kcycles vs unbalanced, colors, std — B1/B2 "
        "are free, the shuffle pays a real pass.\n"
        "jp-vs-speculative rows: speedup over sequential, colors, rounds — "
        "the MIS-based baseline needs far more rounds than N1-N2.\n"
        "distributed rows: supersteps, colors, Kwords exchanged — the "
        "partitioned superstep framework the shared-memory work descends "
        "from; a random partition maximizes the boundary and the traffic.\n"
        "ordering rows: sequential Mcycles and colors per vertex ordering "
        "(ColPack's set).\n"
        "distance-k rows: speedup over sequential, colors, conflicts — the "
        "paper's §VIII extension (distance-k balls stay small on meshes)."
    )
    return Experiment(
        id="ablations",
        title=f"design-choice ablations on {DATASET} ({threads} threads)",
        header=["sweep", "setting", "metric1", "metric2", "metric3"],
        rows=rows,
        notes=notes,
    )
