"""Figure 2 — execution time and colors for all matrices and algorithms.

The paper's eight sub-figures plot, per matrix, the execution time at
t ∈ {2, 4, 8, 16} (bars) and the color count (line) for each of the eight
algorithms.  We emit the same data as rows: one per
(matrix, algorithm) with the four simulated times and the 16-thread color
count, plus the sequential baseline per matrix for reference.
"""

from __future__ import annotations

from repro.bench.runner import (
    PAPER_THREADS,
    run_algorithm,
    run_sequential_baseline,
)
from repro.bench.tables import Experiment
from repro.core.bgpc import BGPC_ALGORITHMS
from repro.datasets.registry import bgpc_dataset_names

__all__ = ["run"]


def run(scale: str = "small", threads: int = 16) -> Experiment:
    """Regenerate the Figure 2 data (all matrices x algorithms x threads)."""
    rows = []
    series: dict = {}
    for name in bgpc_dataset_names():
        seq = run_sequential_baseline(name, scale)
        rows.append((name, "sequential", int(seq.cycles), "", "", "", seq.num_colors))
        for alg in BGPC_ALGORITHMS:
            cycles = []
            colors16 = None
            for t in PAPER_THREADS:
                result = run_algorithm(name, alg, t, scale)
                cycles.append(result.cycles)
                if t == 16:
                    colors16 = result.num_colors
            series[(name, alg)] = {"cycles": cycles, "colors16": colors16}
            rows.append((name, alg, *[int(c) for c in cycles], colors16))
    notes = (
        "One row per (matrix, algorithm): simulated cycles at t=2,4,8,16 and "
        "the 16-thread color count; 'sequential' rows give the greedy "
        "baseline.  Paper Fig. 2 plots the same data as bars+line per matrix."
    )
    return Experiment(
        id="figure2",
        title="execution cycles and colors for all matrices and algorithms",
        header=["matrix", "alg", "t=2", "t=4", "t=8", "t=16", "#colors@16"],
        rows=rows,
        notes=notes,
        data={"series": series},
    )
