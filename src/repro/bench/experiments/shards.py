"""Shards — partition quality vs real communication on ``backend="sharded"``.

The sharded backend (see ``docs/sharding.md``) colors interior vertices
per-shard and resolves boundary vertices in bulk-synchronous supersteps,
counting the *actually exchanged* frontier words.  This experiment sweeps
shard counts × partitioners on the regular channel-mesh stencil — the
instance where topology-aware partitioning should shine — and reports, per
configuration: the boundary fraction the partition induces, the supersteps
and conflicts the boundary resolution took, and the exchanged words.

The acceptance claim it backs (asserted by the ``sharded-smoke`` CI job):
at every shard count, the BFS-grown partition yields a strictly smaller
boundary fraction *and* strictly fewer exchanged words than the random
partition — locality is what the edge-cut-aware partitioners buy.
"""

from __future__ import annotations

from repro.bench.tables import Experiment
from repro.core.bgpc import color_bgpc
from repro.datasets import channel_mesh

__all__ = ["run", "SHARD_COUNTS", "SHARD_PARTITIONERS"]

#: Shard counts the sweep covers (the CI job asserts on both).
SHARD_COUNTS = (2, 4)

#: Partitioners compared at every shard count, worst-first.
SHARD_PARTITIONERS = ("random", "contiguous", "bfs", "greedy")

#: Mesh dimensions per registry scale (vertices = product).
_MESH_DIMS = {
    "tiny": (6, 5, 5),
    "small": (10, 8, 8),
    "medium": (14, 10, 10),
    "large": (20, 14, 14),
}


def run(scale: str = "small", threads: int = 4) -> Experiment:
    """Sweep shard counts × partitioners on the channel mesh."""
    dims = _MESH_DIMS.get(scale, _MESH_DIMS["small"])
    mesh = channel_mesh(*dims)
    n = mesh.num_vertices
    shard_counts = tuple(s for s in SHARD_COUNTS if s <= max(threads, SHARD_COUNTS[0]))
    header = [
        "shards",
        "partitioner",
        "boundary",
        "bnd frac",
        "supersteps",
        "conflicts",
        "comm words",
        "colors",
    ]
    rows: list[tuple] = []
    data_rows: list[dict] = []
    for shards in shard_counts:
        for name in SHARD_PARTITIONERS:
            result = color_bgpc(
                mesh,
                "V-V",
                threads=shards,
                backend="sharded",
                partitioner=name,
            )
            wm = result.work_metrics
            boundary = wm["shard.boundary"]
            frac = boundary / n if n else 0.0
            rows.append(
                (
                    shards,
                    name,
                    boundary,
                    frac,
                    wm["shard.supersteps"],
                    wm["shard.conflicts"],
                    wm["shard.comm_words"],
                    result.num_colors,
                )
            )
            data_rows.append(
                {
                    "shards": shards,
                    "partitioner": name,
                    "boundary": int(boundary),
                    "boundary_fraction": frac,
                    "supersteps": int(wm["shard.supersteps"]),
                    "conflicts": int(wm["shard.conflicts"]),
                    "comm_words": int(wm["shard.comm_words"]),
                    "comm_messages": int(wm["shard.comm_messages"]),
                    "num_colors": int(result.num_colors),
                }
            )

    def _cell(shards: int, name: str, field: str):
        for row in data_rows:
            if row["shards"] == shards and row["partitioner"] == name:
                return row[field]
        return None

    top = shard_counts[-1]
    bfs_frac = _cell(top, "bfs", "boundary_fraction")
    rnd_frac = _cell(top, "random", "boundary_fraction")
    bfs_words = _cell(top, "bfs", "comm_words")
    rnd_words = _cell(top, "random", "comm_words")
    notes = (
        f"channel_mesh{dims} ({n} vertices), V-V schedule, sharded backend. "
        f"At {top} shards BFS keeps the boundary to {bfs_frac:.0%} of "
        f"vertices vs {rnd_frac:.0%} for random, exchanging "
        f"{bfs_words} vs {rnd_words} words — topology-aware partitions "
        "earn their keep in real communication, not just in the model. "
        "Results are deterministic at every shard count (see "
        "docs/sharding.md), so these numbers are regress-gate material."
    )
    return Experiment(
        id="shards",
        title=f"shard count x partitioner on channel_mesh{dims} "
        "(boundary fraction vs real exchanged words)",
        header=header,
        rows=rows,
        notes=notes,
        data={"rows": data_rows, "vertices": n, "dims": list(dims)},
    )
