"""Serve — replay a recorded request mix through the coloring service.

Not a paper table: this measures the service layer added on top of the
paper's kernels (``docs/service.md``).  A fixed, recorded mix of coloring
requests — three instances, two schedules, with the duplicates a real
client workload produces — is replayed through an in-process
:class:`~repro.service.service.ColoringService`, and every request is
charged its actual backend work (the sum of its
:data:`~repro.obs.work.WORK_METRICS` counters).  Duplicates served from
the LRU cache cost zero work, so the table shows directly what the cache
economy buys: the hit rate and the fraction of backend work the cache
absorbed.

The replay pins the deterministic ``sim`` backend, so the work column —
and therefore the whole table — is reproducible run to run.
"""

from __future__ import annotations

import asyncio

from repro.bench.tables import Experiment
from repro.datasets.registry import load_dataset

__all__ = ["run", "REQUEST_MIX"]

#: The recorded request mix: ``(dataset, algorithm)`` per request, in
#: arrival order.  12 requests over 5 distinct configurations — the
#: duplicate pattern (7 repeats) is the point of the experiment.
REQUEST_MIX = (
    ("copapers", "N1-N2"),
    ("af_shell", "N1-N2"),
    ("copapers", "N1-N2"),
    ("copapers", "V-V"),
    ("af_shell", "N1-N2"),
    ("copapers", "N1-N2"),
    ("movielens", "N1-N2"),
    ("copapers", "V-V"),
    ("af_shell", "V-V"),
    ("copapers", "N1-N2"),
    ("movielens", "N1-N2"),
    ("af_shell", "V-V"),
)


async def _replay(mix, scale: str, threads: int, backend: str):
    from repro.service import ColoringRequest, ColoringService

    responses = []
    async with ColoringService(
        backend=backend, threads=threads, cache_size=64
    ) as service:
        for dataset, algorithm in mix:
            request = ColoringRequest(
                graph=load_dataset(dataset, scale),
                algorithm=algorithm,
                threads=threads,
            )
            responses.append(await service.submit(request))
        stats = service.stats()
    return responses, stats


def run(scale: str = "small", threads: int = 4, backend: str = "sim") -> Experiment:
    """Replay the recorded mix and tabulate per-request cost."""
    responses, stats = asyncio.run(
        _replay(REQUEST_MIX, scale, threads, backend)
    )
    header = ["#", "dataset", "algorithm", "served", "colors", "work"]
    rows: list[tuple] = []
    for i, ((dataset, algorithm), resp) in enumerate(
        zip(REQUEST_MIX, responses), start=1
    ):
        served = "cache" if resp.cached else (
            "coalesced" if resp.coalesced else "fresh"
        )
        rows.append(
            (
                i,
                dataset,
                algorithm,
                served,
                resp.result.num_colors,
                sum(resp.work_metrics.values()),
            )
        )
    hits = stats["cache"]["hits"]
    total = stats["requests"]
    executed = sum(stats["work_executed"].values())
    saved = sum(stats["work_saved"].values())
    denominator = executed + saved
    saved_share = saved / denominator if denominator else 0.0
    notes = (
        f"hit rate {hits}/{total} ({hits / total:.0%}); backend work "
        f"{executed} charged, {saved} served from cache "
        f"({saved_share:.0%} of the naive total) on the {backend} backend."
    )
    return Experiment(
        id="serve",
        title=f"coloring-service request replay ({len(REQUEST_MIX)} requests, "
        f"{scale} scale, {backend} backend)",
        header=header,
        rows=rows,
        notes=notes,
        data={"stats": stats},
    )
