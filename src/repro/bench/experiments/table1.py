"""Table I — remaining |W_next| after the first iteration.

The paper motivates Alg. 8's two refinements (first-pass marking and reverse
first-fit) by counting, on 16 threads, how many vertices are still uncolored
after one net-based coloring round followed by one net-based conflict
removal:

=============  ========  ===========  =========
Matrix         Alg. 6    Alg. 6+rev   Alg. 8
=============  ========  ===========  =========
bone010        863,785   806,264      610,924
coPapersDBLP   409,621   303,152      133,874
=============  ========  ===========  =========

(of |V_B| = 986,703 and 540,486 respectively).  Expected shape: monotone
decrease from Alg. 6 to Alg. 8 on both instances.
"""

from __future__ import annotations

import numpy as np

from repro.bench.tables import Experiment
from repro.core.bgpc.net import (
    make_net_color_kernel,
    make_net_color_kernel_v1,
    make_net_removal_kernel,
)
from repro.datasets.registry import load_dataset
from repro.machine.cost import CostModel
from repro.machine.machine import Machine
from repro.machine.scheduler import Schedule
from repro.types import UNCOLORED

__all__ = ["run", "remaining_after_first_iteration"]

DATASETS = ("bone", "copapers")
VARIANTS = ("alg6", "alg6-reverse", "alg8")


def remaining_after_first_iteration(
    dataset: str, variant: str, threads: int = 16, scale: str = "small"
) -> int:
    """Run one net-coloring round + one net-removal round; count uncolored."""
    bg = load_dataset(dataset, scale)
    cost = CostModel()
    machine = Machine(threads, cost)
    colors = np.full(bg.num_vertices, UNCOLORED, dtype=np.int64)
    memory = machine.make_memory(colors)
    if variant == "alg6":
        color_kernel = make_net_color_kernel_v1(bg, cost, reverse=False)
    elif variant == "alg6-reverse":
        color_kernel = make_net_color_kernel_v1(bg, cost, reverse=True)
    elif variant == "alg8":
        color_kernel = make_net_color_kernel(bg, cost)
    else:
        raise ValueError(f"unknown Table I variant {variant!r}")
    schedule = Schedule.dynamic(64)
    machine.parallel_for(bg.num_nets, color_kernel, memory, schedule=schedule)
    removal = make_net_removal_kernel(bg, cost)
    machine.parallel_for(
        bg.num_nets, removal, memory, schedule=schedule, phase_kind="remove"
    )
    return int(np.count_nonzero(memory.values == UNCOLORED))


def run(scale: str = "small", threads: int = 16) -> Experiment:
    """Regenerate Table I on the synthetic analogues."""
    rows = []
    shape_ok = True
    for dataset in DATASETS:
        bg = load_dataset(dataset, scale)
        remaining = [
            remaining_after_first_iteration(dataset, v, threads, scale)
            for v in VARIANTS
        ]
        rows.append((dataset, bg.num_vertices, *remaining))
        # Both refinements must beat plain Alg 6; the ordering between
        # Alg 6+reverse and Alg 8 can tie within noise at reduced scale.
        shape_ok &= remaining[1] <= remaining[0] and remaining[2] <= remaining[0]
    notes = (
        "Paper (16 threads): bone010 863,785 / 806,264 / 610,924 of 986,703; "
        "coPapersDBLP 409,621 / 303,152 / 133,874 of 540,486.\n"
        f"Shape (both refinements leave fewer uncolored than Alg 6): "
        f"{'HOLDS' if shape_ok else 'VIOLATED'}."
    )
    return Experiment(
        id="table1",
        title="remaining |W_next| after the first iteration (net-based kernels, "
        f"{threads} threads)",
        header=["matrix", "|V_A|", "alg6", "alg6+reverse", "alg8"],
        rows=rows,
        notes=notes,
        data={"shape_ok": shape_ok},
    )
