"""Adaptive controller vs static schedules on the pinned regress instances.

The question behind ``repro.core.adaptive`` (see ``docs/adaptive.md``)
is whether a conflict-rate controller can match the best *hand-picked*
net-removal horizon without knowing the instance in advance.  This
experiment answers it with the deterministic work-metric counters (the
same numbers the perf-regression gate pins), not wall clock:

* **statics** — the paper's candidate schedules (``V-V-64D``, ``V-N1``,
  ``V-N2``, ``N1-N2``, ``N1-Ninf``), each a fixed horizon someone had to
  choose per instance;
* **switched** — a static per-iteration *policy* switch from the ``@``
  grammar (``V-V-64D-B1@1``: first-fit iteration 0, B1 from the first
  recolor round), showing segment plans run end to end;
* **adaptive** — the :class:`~repro.core.adaptive.AdaptiveSchedule`
  controller at the default threshold, which reads the per-iteration
  conflict rate and decides the horizon live.

The instances are the perf-regression suite's pinned trio (bipartite,
distance-2, mesh) so every number here is byte-reproducible on the
``sim`` backend.  ``data["instances"]`` carries, per instance, each
schedule's total work, the best static, the adaptive total and a
``beats_static`` flag — the CI ``adaptive-smoke`` job asserts the flag
on at least two instances.
"""

from __future__ import annotations

from repro.bench.regress.suite import _get_instance
from repro.bench.tables import Experiment
from repro.core.adaptive import AdaptiveSchedule
from repro.core.bgpc import color_bgpc
from repro.core.d2gc import color_d2gc
from repro.obs.work import WORK_METRICS

__all__ = ["run", "STATIC_SCHEDULES", "SWITCHED_SCHEDULE"]

#: Static horizon candidates the controller competes against.
STATIC_SCHEDULES = ("V-V-64D", "V-N1", "V-N2", "N1-N2", "N1-Ninf")

#: A static per-iteration policy switch (``@`` grammar) for contrast:
#: the regress instances converge in two rounds, so the switch must land
#: on iteration 1 to influence the recolor round.
SWITCHED_SCHEDULE = "V-V-64D-B1@1"

#: Instance name → coloring entry point (problems differ per instance).
_RUNNERS = {
    "bip-small": ("bgpc", color_bgpc),
    "uni-small": ("d2gc", color_d2gc),
    "mesh-small": ("bgpc", color_bgpc),
}


def _total_work(result) -> int:
    return sum(int(result.work_metrics.get(m, 0)) for m in WORK_METRICS)


def run(scale: str = "small", threads: int = 16) -> Experiment:
    """Compare static, switched and adaptive schedules per instance.

    ``scale`` is accepted for registry uniformity but ignored: the point
    is the *pinned* regress instances, whose sizes are fixed so the work
    totals stay byte-reproducible.
    """
    header = [
        "instance",
        "schedule",
        "total work",
        "colors",
        "iters",
        "vs best static",
    ]
    rows: list[tuple] = []
    instances: dict[str, dict] = {}
    for inst, (problem, fn) in _RUNNERS.items():
        graph = _get_instance(inst)
        statics: dict[str, int] = {}
        for schedule in (*STATIC_SCHEDULES, SWITCHED_SCHEDULE):
            result = fn(graph, schedule, threads=threads, backend="sim")
            statics[schedule] = _total_work(result)
            rows.append(
                (
                    inst,
                    schedule,
                    statics[schedule],
                    result.num_colors,
                    len(result.iterations),
                    "",
                )
            )
        best_name = min(STATIC_SCHEDULES, key=statics.__getitem__)
        best_total = statics[best_name]

        controller = AdaptiveSchedule()
        result = fn(graph, controller, threads=threads, backend="sim")
        adaptive_total = _total_work(result)
        beats = adaptive_total <= best_total
        rows.append(
            (
                inst,
                controller.name,
                adaptive_total,
                result.num_colors,
                len(result.iterations),
                f"{adaptive_total / best_total:.3f}x {best_name}",
            )
        )
        instances[inst] = {
            "problem": problem,
            "statics": statics,
            "best_static": best_name,
            "best_static_total": best_total,
            "adaptive_total": adaptive_total,
            "beats_static": beats,
            "switched_at": controller.switched_at,
            "decisions": [
                {
                    "iteration": d.iteration,
                    "queue_size": d.queue_size,
                    "conflicts": d.conflicts,
                    "rate": d.rate,
                    "conflict_checks": d.conflict_checks,
                    "next_regime": d.next_regime,
                }
                for d in controller.decisions
            ],
        }

    beat_count = sum(1 for v in instances.values() if v["beats_static"])
    notes = (
        "Deterministic sim-backend work totals (sum of "
        f"{', '.join(WORK_METRICS)}) on the pinned regress instances; "
        "'scale' is ignored so totals stay byte-reproducible.  The "
        f"adaptive controller matched or beat the best static horizon on "
        f"{beat_count}/{len(instances)} instances without any per-instance "
        "tuning — the conflict rate alone decides when the O(|E|) "
        "net-removal sweep stops paying."
    )
    return Experiment(
        id="adaptive",
        title=(
            "Adaptive conflict-rate controller vs static schedule horizons "
            f"({threads} simulated threads)"
        ),
        header=header,
        rows=rows,
        notes=notes,
        data={"instances": instances, "threads": threads},
    )
