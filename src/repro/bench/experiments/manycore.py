"""Manycore projection — the paper's §VIII GPU/Xeon-Phi direction.

The paper closes: *"the task sizes in the vertex-based approach ... deviate
much more compared to that of the net-based approach ... which can be a
comfort while parallelizing the coloring algorithms on manycore
architectures."*  This experiment quantifies both halves of that sentence on
the simulator:

1. **task-size deviation** — the coefficient of variation of per-task work
   for vertex-based tasks (two-hop neighbourhood sizes) vs net-based tasks
   (net membership sizes), per instance;
2. **manycore scaling** — V-V-64D vs N1-N2 speedups at p ∈ {16, 32, 64}
   with GPU-style chunk-16 scheduling on a manycore cost model
   (NUMA-enabled, earlier bandwidth knee), where the net-based variant's
   smaller, more uniform tasks keep scaling after the vertex-based variant
   saturates.
"""

from __future__ import annotations

import numpy as np

from repro.bench.tables import Experiment
from repro.core.bgpc import sequential_bgpc
from repro.datasets.registry import load_dataset
from repro.graph.twohop import bgpc_twohop
from repro.machine.cost import CostModel

__all__ = ["run", "MANYCORE_COST", "task_size_cv"]

#: Manycore flavour of the cost model: two 32-thread sockets, an earlier
#: bandwidth knee relative to the core count, NUMA on.
MANYCORE_COST = CostModel(
    bandwidth_threads=16,
    bandwidth_slope_pct=1,
    socket_threads=32,
    numa_penalty_pct=25,
)

THREADS = (16, 32, 64)
DATASETS = ("channel", "copapers", "movielens")

#: Manycore runs use finer chunks than the CPU's 64 — the standard move when
#: the thread count approaches the chunk count (GPU/Phi implementations use
#: warp/core-sized work units).
MANYCORE_CHUNK = 16


def task_size_cv(dataset: str, scale: str) -> tuple[float, float]:
    """(vertex-task CV, net-task CV) of per-task work for one instance."""
    bg = load_dataset(dataset, scale)
    two = bgpc_twohop(bg)
    if two is not None:
        vertex_sizes = np.diff(two.ptr).astype(np.float64)
    else:
        net_degs = bg.net_to_vtxs.degrees()
        vertex_sizes = np.zeros(bg.num_vertices, dtype=np.float64)
        np.add.at(
            vertex_sizes,
            np.repeat(
                np.arange(bg.num_vertices), bg.vtx_to_nets.degrees()
            ),
            net_degs[bg.vtx_to_nets.idx].astype(np.float64),
        )
    net_sizes = bg.net_to_vtxs.degrees().astype(np.float64)

    def cv(sizes: np.ndarray) -> float:
        mean = sizes.mean() if sizes.size else 0.0
        return float(sizes.std() / mean) if mean else 0.0

    return cv(vertex_sizes), cv(net_sizes)


def run(scale: str = "small", threads: int = 64) -> Experiment:
    """Run the manycore projection (task CV + 16..64-thread scaling)."""
    rows: list[tuple] = []
    data: dict = {}
    for name in DATASETS:
        v_cv, n_cv = task_size_cv(name, scale)
        rows.append((name, "task-size CV", round(v_cv, 2), round(n_cv, 2), ""))
        bg = load_dataset(name, scale)
        seq = sequential_bgpc(bg, cost=MANYCORE_COST)
        speeds = {}
        from repro.core.bgpc.runner import BGPC_ALGORITHMS, BGPCAdapter
        from repro.core.driver import AlgorithmSpec, run_speculative

        for alg in ("V-V-64D", "N1-N2"):
            base_spec = BGPC_ALGORITHMS[alg]
            spec = AlgorithmSpec(
                name=f"{alg}@mc",
                chunk=MANYCORE_CHUNK,
                queue_mode=base_spec.queue_mode,
                net_color_iters=base_spec.net_color_iters,
                net_removal_iters=base_spec.net_removal_iters,
            )
            per_t = []
            for p in THREADS:
                adapter = BGPCAdapter(bg, MANYCORE_COST)
                result = run_speculative(
                    adapter, spec, threads=p, cost=MANYCORE_COST
                )
                per_t.append(seq.cycles / result.cycles)
            speeds[alg] = per_t
            rows.append(
                (name, alg, *[round(s, 2) for s in per_t])
            )
        data[name] = {
            "task_cv": (v_cv, n_cv),
            "speedups": speeds,
        }
    cv_holds = [n for n in DATASETS if data[n]["task_cv"][1] <= data[n]["task_cv"][0]]
    gap_ratio = {
        n: (
            data[n]["speedups"]["N1-N2"][-1]
            / max(1e-9, data[n]["speedups"]["V-V-64D"][-1]),
            data[n]["speedups"]["N1-N2"][0]
            / max(1e-9, data[n]["speedups"]["V-V-64D"][0]),
        )
        for n in DATASETS
    }
    notes = (
        "task-size CV rows: coefficient of variation of vertex-based vs "
        "net-based per-task work. Paper SVIII's 'net tasks deviate less' "
        f"holds on {cv_holds} (the square instances); the rectangular "
        "movielens analogue inverts it because its giant net dominates the "
        "net-side distribution.\n"
        "algorithm rows: speedups over sequential at p=16/32/64 on the "
        "NUMA-enabled manycore cost model with chunk 16; N1-N2 vs V-V-64D "
        "ratio at p=64 / p=16: "
        + ", ".join(f"{n} {a:.1f}x/{b:.1f}x" for n, (a, b) in gap_ratio.items())
        + "."
    )
    return Experiment(
        id="manycore",
        title="manycore projection: task-size deviation and 16..64-thread scaling",
        header=["matrix", "row", "p=16 / vCV", "p=32 / nCV", "p=64"],
        rows=rows,
        notes=notes,
        data=data,
    )
