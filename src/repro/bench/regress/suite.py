"""The pinned perf-regression benchmark suite.

Each :class:`BenchCase` names one deterministic coloring configuration —
problem × schedule × backend × thread count on a seeded synthetic
instance sized for CI (sub-second per case).  The suite's invariant is
that every case's *work metrics* (see :mod:`repro.obs.work`) are
byte-for-byte reproducible across runs and machines:

* ``sim`` is the cycle-accurate machine — deterministic at any simulated
  thread count, so those cases also pin the simulated ``cycles``;
* ``numpy`` is single-process vectorized code — deterministic;
* ``threaded`` and ``process`` race for real with >1 worker, so their
  cases run with **one** worker: the point is covering their code paths
  (local-counter merge, cross-process aggregation), not their races;
* ``sharded`` commits only at superstep barriers, so it is deterministic
  at **any** shard count — its multi-shard cases additionally pin the
  ``shard.*`` structure metrics (boundary size, supersteps, exchanged
  words; see :data:`repro.obs.work.SHARD_METRICS`).

Instances are built lazily and memoized per process so a ``--repeats``
determinism check does not pay the generation cost twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch

__all__ = ["BenchCase", "INSTANCES", "default_suite", "select_cases"]


def _bipartite_small():
    from repro.datasets.synthetic import random_bipartite

    return random_bipartite(120, 200, density=0.05, seed=7)


def _graph_small():
    from repro.datasets.synthetic import random_graph

    return random_graph(200, 800, seed=11)


def _mesh_small():
    from repro.datasets.synthetic import channel_mesh

    return channel_mesh(6, 5, 5)


#: Instance name → zero-argument builder.  Adding an instance here makes it
#: addressable from :class:`BenchCase.instance`.
INSTANCES = {
    "bip-small": _bipartite_small,
    "uni-small": _graph_small,
    "mesh-small": _mesh_small,
}

_instance_cache: dict[str, object] = {}


def _get_instance(name: str):
    if name not in _instance_cache:
        _instance_cache[name] = INSTANCES[name]()
    return _instance_cache[name]


@dataclass(frozen=True)
class BenchCase:
    """One pinned benchmark configuration.

    ``id`` is the stable key used in the baseline JSON; changing a case's
    parameters without renaming it silently re-baselines that key, so
    treat the id as part of the contract.
    """

    id: str
    problem: str  # "bgpc" | "d2gc" | "incremental"
    instance: str  # key into INSTANCES
    schedule: str
    backend: str = "sim"
    threads: int = 16
    fastpath_mode: str = "exact"
    extra: dict = field(default_factory=dict)

    def run(self, tracer=None):
        """Execute the case once and return its :class:`ColoringResult`."""
        inst = _get_instance(self.instance)
        kwargs = dict(
            threads=self.threads,
            backend=self.backend,
            fastpath_mode=self.fastpath_mode,
            tracer=tracer,
            **self.extra,
        )
        if self.problem == "bgpc":
            from repro.core.bgpc import color_bgpc

            return color_bgpc(inst, self.schedule, **kwargs)
        if self.problem == "d2gc":
            from repro.core.d2gc import color_d2gc

            return color_d2gc(inst, self.schedule, **kwargs)
        if self.problem == "incremental":
            # Base coloring + pinned localized delta, then the frontier-only
            # recolor; the returned result carries ONLY the incremental
            # loop's work counters, so the baseline pins the frontier math.
            from repro.bench.experiments.incremental import make_delta
            from repro.core.bgpc import color_bgpc
            from repro.core.incremental import recolor_incremental

            base = color_bgpc(
                inst, self.schedule, threads=self.threads,
                backend=self.backend, fastpath_mode=self.fastpath_mode,
            )
            delta = make_delta(inst, count=5, seed=13)
            inc = recolor_incremental(
                inst,
                base.colors,
                delta,
                algorithm=self.schedule,
                threads=self.threads,
                backend=self.backend,
                tracer=tracer,
                **self.extra,
            )
            return inc.result
        raise ValueError(f"unknown problem {self.problem!r}")


def default_suite() -> list[BenchCase]:
    """The committed CI suite: every schedule family × every backend.

    Kept deliberately small (each case is well under a second) — the gate's
    job is catching *work* inflation in the kernels and backends, not
    benchmarking throughput.
    """
    return [
        # Simulated machine: deterministic at 16 threads, cycles pinned too.
        BenchCase("bgpc/V-V/sim16", "bgpc", "bip-small", "V-V"),
        BenchCase("bgpc/V-V-64D/sim16", "bgpc", "bip-small", "V-V-64D"),
        BenchCase("bgpc/N1-N2/sim16", "bgpc", "bip-small", "N1-N2"),
        BenchCase("bgpc/N2-N2-B1/sim16", "bgpc", "bip-small", "N2-N2-B1"),
        BenchCase("d2gc/V-V/sim16", "d2gc", "uni-small", "V-V"),
        BenchCase("d2gc/N1-N2/sim16", "d2gc", "uni-small", "N1-N2"),
        # Per-iteration schedule switching: a static "@" segment plan and
        # the adaptive conflict-rate controller.  Both are deterministic
        # on sim (controller decisions are pure functions of the pinned
        # counters — see docs/adaptive.md), so their work is pinned like
        # any static schedule's.
        BenchCase(
            "bgpc/V-V-64D-B1@1/sim16", "bgpc", "bip-small", "V-V-64D-B1@1"
        ),
        BenchCase("bgpc/adaptive/sim16", "bgpc", "bip-small", "adaptive"),
        BenchCase("d2gc/adaptive/sim16", "d2gc", "uni-small", "adaptive"),
        # Vectorized fast path: single-process, deterministic.
        BenchCase(
            "bgpc/numpy-exact", "bgpc", "bip-small", "N1-N2",
            backend="numpy", threads=1, fastpath_mode="exact",
        ),
        BenchCase(
            "bgpc/numpy-spec", "bgpc", "bip-small", "N1-N2",
            backend="numpy", threads=1, fastpath_mode="speculative",
        ),
        BenchCase(
            "d2gc/numpy-spec", "d2gc", "uni-small", "N1-N2",
            backend="numpy", threads=1, fastpath_mode="speculative",
        ),
        # Real-parallel backends pinned to one worker (see module docstring).
        BenchCase(
            "bgpc/N1-N2/threaded1", "bgpc", "bip-small", "N1-N2",
            backend="threaded", threads=1,
        ),
        BenchCase(
            "bgpc/N1-N2/process1", "bgpc", "bip-small", "N1-N2",
            backend="process", threads=1,
        ),
        # Sharded backend: deterministic at any shard count.  One shard is
        # the byte-parity anchor with process@1; the two-shard bfs/random
        # pair pins the partition-quality gap (boundary, exchanged words)
        # on the mesh, and the d2gc case covers the generic-group path.
        BenchCase(
            "bgpc/V-V/sharded1", "bgpc", "bip-small", "V-V",
            backend="sharded", threads=1,
        ),
        BenchCase(
            "bgpc/V-V/sharded2-bfs", "bgpc", "mesh-small", "V-V",
            backend="sharded", threads=2, extra={"partitioner": "bfs"},
        ),
        BenchCase(
            "bgpc/V-V/sharded2-random", "bgpc", "mesh-small", "V-V",
            backend="sharded", threads=2, extra={"partitioner": "random"},
        ),
        BenchCase(
            "d2gc/V-V/sharded2-greedy", "d2gc", "uni-small", "V-V",
            backend="sharded", threads=2, extra={"partitioner": "greedy"},
        ),
        # Incremental recoloring: frontier-restricted resume after a pinned
        # localized delta; pins the two-hop invalidation math.
        BenchCase("bgpc/incr/V-V/sim16", "incremental", "bip-small", "V-V"),
        BenchCase(
            "bgpc/incr/V-V/process1", "incremental", "bip-small", "V-V",
            backend="process", threads=1,
        ),
    ]


def select_cases(suite: list[BenchCase], patterns: list[str]) -> list[BenchCase]:
    """Filter ``suite`` by glob patterns over case ids (empty = all)."""
    if not patterns:
        return list(suite)
    return [c for c in suite if any(fnmatch(c.id, p) for p in patterns)]
