"""Deterministic perf-regression gate over work-metric counters.

Three pieces (see ``docs/benchmarks.md`` for the workflow):

* :mod:`~repro.bench.regress.suite` — the pinned, seeded benchmark cases
  (BGPC + D2GC schedules across all four execution backends, sized for
  CI);
* :mod:`~repro.bench.regress.store` — collecting work metrics into
  canonical, byte-reproducible ``BENCH_*.json`` baselines;
* :mod:`~repro.bench.regress.compare` — tolerance-banded comparison with
  a per-kernel delta table and a non-zero exit on regression, fronted by
  :mod:`~repro.bench.regress.cli` (``python -m repro.bench regress``).

The gate compares *work* (forbidden-color probes, member scans, conflict
checks, queue pushes, color writes — :data:`repro.obs.work.WORK_METRICS`),
not wall-clock: counts are exactly reproducible on any machine, so CI can
fail on a 2% inflation without a quiet benchmarking box.
"""

from repro.bench.regress.compare import (
    DEFAULT_TOLERANCE,
    EXACT_METRICS,
    CompareReport,
    MetricDelta,
    compare,
)
from repro.bench.regress.store import RegressError, collect, load, save
from repro.bench.regress.suite import BenchCase, default_suite, select_cases

__all__ = [
    "BenchCase",
    "CompareReport",
    "DEFAULT_TOLERANCE",
    "EXACT_METRICS",
    "MetricDelta",
    "RegressError",
    "collect",
    "compare",
    "default_suite",
    "load",
    "save",
    "select_cases",
]
