"""``python -m repro.bench regress`` — the perf-regression gate CLI.

Typical uses::

    # create / refresh the committed baseline
    python -m repro.bench regress --write BENCH_baseline.json

    # CI gate: compare a fresh collection against the committed baseline,
    # write the fresh numbers next to it for the artifact upload
    python -m repro.bench regress --baseline BENCH_baseline.json \
        --write BENCH_head.json

    # prove the gate trips: inflate one metric 2x and expect exit 1
    python -m repro.bench regress --baseline BENCH_baseline.json --inject probes=2

Exit codes: 0 = no regression, 1 = regression (or nondeterministic
counters), 2 = usage / environment error.  Wall-clock is printed as an
advisory table only — it never gates and is never written to the store.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.regress.compare import (
    DEFAULT_TOLERANCE,
    compare,
    inject,
    parse_injection,
)
from repro.bench.regress.store import RegressError, collect, load, save
from repro.bench.regress.suite import default_suite, select_cases
from repro.obs.work import FASTPATH_METRICS, SHARD_METRICS, WORK_METRICS

__all__ = ["build_parser", "main", "INJECTABLE_METRICS"]

#: Every metric name the store can carry, and thus --inject can touch:
#: the deterministic work counters plus the behavioral/simulated extras
#: and the backend-attached structure metrics.
INJECTABLE_METRICS = (
    WORK_METRICS
    + ("num_colors", "iterations", "cycles")
    + SHARD_METRICS
    + FASTPATH_METRICS
)


def _advisory_table(advisory: dict[str, float]) -> str:
    width = max(len(cid) for cid in advisory)
    lines = [f"{'case':<{width}}  median wall (advisory)"]
    for cid, wall in advisory.items():
        lines.append(f"{cid:<{width}}  {wall * 1000:>8.1f} ms")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for ``python -m repro.bench regress``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench regress",
        description="Deterministic work-metric regression gate.",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="compare against this BENCH_*.json; exit 1 on regression",
    )
    parser.add_argument(
        "--write", default=None,
        help="write the freshly collected metrics to this path",
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="runs per case; repeats must agree exactly or the suite "
        "fails as nondeterministic (default: 2)",
    )
    parser.add_argument(
        "--cases", nargs="*", default=[], metavar="GLOB",
        help="only run cases whose id matches any glob (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list case ids and exit"
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="relative band for count metrics (default: "
        f"{DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--inject", default=None, metavar="METRIC=FACTOR",
        help="inflate METRIC by FACTOR in the fresh collection before "
        "comparing — a self-test hook proving the gate trips",
    )
    parser.add_argument(
        "--map-backend", default=None, metavar="FROM=TO",
        help="run cases pinned to backend FROM on backend TO instead, "
        "keeping their ids — e.g. numpy=compiled proves the compiled "
        "backend reproduces the numpy baseline's counters exactly",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="itemize in-band metrics in the delta table too",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    injection = None
    if args.inject is not None:
        # Validate up front: a typo'd metric name must fail fast with the
        # valid names, not after the (expensive) collection has run.
        try:
            injection = parse_injection(args.inject)
        except RegressError as exc:
            print(f"regress: {exc}", file=sys.stderr)
            return 2
        if injection[0] not in INJECTABLE_METRICS:
            print(
                f"regress: unknown metric {injection[0]!r} in --inject; "
                f"choose from {list(INJECTABLE_METRICS)}",
                file=sys.stderr,
            )
            return 2

    cases = select_cases(default_suite(), args.cases)
    if args.map_backend is not None:
        from dataclasses import replace

        from repro.core.backends import backend_names

        frm, sep, to = args.map_backend.partition("=")
        if not sep or not frm or not to:
            print(
                f"regress: --map-backend expects FROM=TO, got "
                f"{args.map_backend!r}",
                file=sys.stderr,
            )
            return 2
        unknown = [b for b in (frm, to) if b not in backend_names()]
        if unknown:
            print(
                f"regress: unknown backend(s) {unknown} in --map-backend; "
                f"choose from {list(backend_names())}",
                file=sys.stderr,
            )
            return 2
        mapped = [replace(c, backend=to) if c.backend == frm else c
                  for c in cases]
        touched = sum(1 for a, b in zip(cases, mapped) if a is not b)
        cases = mapped
        print(f"[map-backend] {frm} -> {to} on {touched} case(s)")
    if args.list:
        for case in cases:
            print(case.id)
        return 0
    if not cases:
        print(f"no cases match {args.cases}", file=sys.stderr)
        return 2
    if args.baseline is None and args.write is None:
        parser.print_usage(sys.stderr)
        print(
            "nothing to do: pass --baseline to compare and/or --write "
            "to record",
            file=sys.stderr,
        )
        return 2

    try:
        current, advisory = collect(cases, repeats=args.repeats)
    except RegressError as exc:
        print(f"regress: {exc}", file=sys.stderr)
        return 1

    if injection is not None:
        metric, factor = injection
        try:
            touched = inject(current, metric, factor)
        except RegressError as exc:
            print(f"regress: {exc}", file=sys.stderr)
            return 2
        print(f"[inject] {metric} x{factor:g} applied to {touched} case(s)")

    if args.write:
        save(current, args.write)
        print(f"wrote {len(current['cases'])} case(s) to {args.write}")

    print(_advisory_table(advisory))

    if args.baseline:
        try:
            baseline = load(args.baseline)
        except RegressError as exc:
            print(f"regress: {exc}", file=sys.stderr)
            return 2
        report = compare(baseline, current, tolerance=args.tolerance)
        print(report.render(verbose=args.verbose))
        return 0 if report.ok else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
