"""Baseline comparison: tolerance bands, delta table, regression verdict.

The comparator is intentionally asymmetric.  Doing *more* work than the
baseline beyond the tolerance band is a regression — that is the failure
mode the gate exists for.  Doing *less* work passes (and is labelled
``improved`` in the table as a prompt to re-baseline and bank the win).
Behavioral metrics (``num_colors``, ``iterations``) are exact: any change,
in either direction, means the algorithm's output moved and the baseline
must be consciously regenerated, not silently absorbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.regress.store import RegressError

__all__ = [
    "DEFAULT_TOLERANCE",
    "EXACT_METRICS",
    "CompareReport",
    "MetricDelta",
    "compare",
    "parse_injection",
    "inject",
]

#: Relative tolerance band for count metrics (2%): small intended changes
#: (e.g. an extra bounds probe) pass; systematic inflation does not.
DEFAULT_TOLERANCE = 0.02

#: Metrics compared exactly — any change fails (see module docstring).
EXACT_METRICS = ("num_colors", "iterations")


@dataclass(frozen=True)
class MetricDelta:
    """One (case, metric) comparison."""

    case: str
    metric: str
    base: int
    current: int
    status: str  # "ok" | "improved" | "regressed" | "changed"

    @property
    def ratio(self) -> float:
        if self.base == 0:
            return 1.0 if self.current == 0 else float("inf")
        return self.current / self.base

    @property
    def failed(self) -> bool:
        return self.status in ("regressed", "changed")


@dataclass
class CompareReport:
    """Everything the CLI needs to print and to pick an exit code."""

    deltas: list[MetricDelta] = field(default_factory=list)
    missing_cases: list[str] = field(default_factory=list)
    new_cases: list[str] = field(default_factory=list)

    @property
    def failures(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.failed]

    @property
    def ok(self) -> bool:
        return not self.failures and not self.missing_cases

    def render(self, verbose: bool = False) -> str:
        """Per-kernel delta table: failures and improvements always shown,
        in-band metrics summarized (or itemized with ``verbose``)."""
        lines = []
        shown = [
            d for d in self.deltas
            if verbose or d.status in ("regressed", "changed", "improved")
        ]
        if shown:
            wcase = max(len(d.case) for d in shown)
            wmet = max(len(d.metric) for d in shown)
            header = (
                f"{'case':<{wcase}}  {'metric':<{wmet}}  "
                f"{'baseline':>12}  {'current':>12}  {'delta':>8}  status"
            )
            lines.append(header)
            lines.append("-" * len(header))
            for d in shown:
                if d.base == 0:
                    delta = "n/a" if d.current else "0.0%"
                else:
                    delta = f"{(d.ratio - 1.0) * 100:+.1f}%"
                lines.append(
                    f"{d.case:<{wcase}}  {d.metric:<{wmet}}  "
                    f"{d.base:>12}  {d.current:>12}  {delta:>8}  {d.status}"
                )
        in_band = len(self.deltas) - len(shown)
        if in_band:
            lines.append(f"({in_band} metric(s) within tolerance not shown)")
        for case in self.missing_cases:
            lines.append(f"MISSING: baseline case {case!r} was not run")
        for case in self.new_cases:
            lines.append(f"new case {case!r} not in baseline (ignored)")
        if self.ok:
            lines.append("OK: no work-metric regressions")
        else:
            n = len(self.failures) + len(self.missing_cases)
            lines.append(f"FAIL: {n} regression(s) against baseline")
        return "\n".join(lines)


def compare(
    baseline: dict,
    current: dict,
    tolerance: float = DEFAULT_TOLERANCE,
) -> CompareReport:
    """Compare two store payloads (see :mod:`repro.bench.regress.store`).

    Every case present in ``baseline`` must be present in ``current``
    (missing cases fail — a silently dropped case is a hole in the gate);
    cases only in ``current`` are reported but do not fail, so adding a
    case and regenerating the baseline can happen in either order.
    """
    report = CompareReport()
    base_cases = baseline["cases"]
    cur_cases = current["cases"]
    report.new_cases = sorted(set(cur_cases) - set(base_cases))
    for case_id in sorted(base_cases):
        if case_id not in cur_cases:
            report.missing_cases.append(case_id)
            continue
        base_metrics = base_cases[case_id]["metrics"]
        cur_metrics = cur_cases[case_id]["metrics"]
        for metric in sorted(set(base_metrics) | set(cur_metrics)):
            base = int(base_metrics.get(metric, 0))
            cur = int(cur_metrics.get(metric, 0))
            if metric in EXACT_METRICS:
                status = "ok" if cur == base else "changed"
            elif cur > base * (1.0 + tolerance):
                status = "regressed"
            elif cur < base:
                status = "improved"
            else:
                status = "ok"
            report.deltas.append(MetricDelta(case_id, metric, base, cur, status))
    return report


def parse_injection(spec: str) -> tuple[str, float]:
    """Parse a ``METRIC=FACTOR`` injection spec (e.g. ``probes=2``)."""
    if "=" not in spec:
        raise RegressError(f"bad --inject spec {spec!r}; expected METRIC=FACTOR")
    metric, _, factor_s = spec.partition("=")
    try:
        factor = float(factor_s)
    except ValueError as exc:
        raise RegressError(f"bad --inject factor {factor_s!r}") from exc
    return metric.strip(), factor


def inject(current: dict, metric: str, factor: float) -> int:
    """Multiply ``metric`` by ``factor`` in every case of ``current``.

    A test/CI hook: a synthetic regression that exercises the whole
    gate end-to-end (collect → inject → compare → non-zero exit) without
    touching the kernels.  Returns the number of metrics inflated; zero
    means the metric name matched nothing, which is an error upstream.
    """
    touched = 0
    for payload in current["cases"].values():
        metrics = payload["metrics"]
        if metric in metrics:
            metrics[metric] = int(metrics[metric] * factor)
            touched += 1
    if touched == 0:
        raise RegressError(f"--inject metric {metric!r} matched no case metric")
    return touched
