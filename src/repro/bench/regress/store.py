"""Collecting and persisting work-metric baselines (``BENCH_*.json``).

A baseline file is **fully deterministic**: it contains only machine-count
metrics (work counters, colors, iterations, simulated cycles), serialized
as canonical JSON (sorted keys, fixed indentation, trailing newline).  Two
consecutive ``python -m repro.bench regress --write`` runs on the same
revision therefore produce byte-for-byte identical files — that property
is itself under test (``tests/test_regress.py``) and is what lets CI diff
baselines meaningfully.  Wall-clock is *advisory*: measured and reported
by the CLI, never written to the store (see ``docs/benchmarks.md``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from statistics import median

from repro.bench.regress.suite import BenchCase
from repro.errors import ReproError

__all__ = ["SCHEMA_VERSION", "RegressError", "collect", "dumps", "load", "save"]

#: Version of the baseline JSON layout; bump on incompatible changes.
SCHEMA_VERSION = 1


class RegressError(ReproError):
    """A regression-suite failure that is not a metric regression itself:
    nondeterministic counters across repeats, malformed baseline files,
    unknown metrics in an injection spec."""


def _case_metrics(case: BenchCase, result) -> dict[str, int]:
    """The deterministic metric vector of one finished case run."""
    metrics = dict(result.work_metrics)
    metrics["num_colors"] = int(result.num_colors)
    metrics["iterations"] = int(result.num_iterations)
    if case.backend == "sim":
        # Simulated cycles are exact integers in disguise (cost models are
        # integral); pin them so cost-model regressions are caught too.
        metrics["cycles"] = int(round(result.cycles))
    return metrics


def collect(cases: list[BenchCase], repeats: int = 2):
    """Run every case ``repeats`` times; return ``(baseline, advisory)``.

    ``baseline`` is the deterministic store payload (see module docstring).
    ``advisory`` maps case id to the median measured wall-clock seconds —
    reporting material, never gating material.

    Raises :class:`RegressError` if any repeat of a case disagrees with the
    first on any metric: the suite's contract is determinism, and a flaky
    counter would make the gate meaningless.
    """
    if repeats < 1:
        raise RegressError(f"repeats must be >= 1, got {repeats}")
    case_payload: dict[str, dict] = {}
    advisory: dict[str, float] = {}
    for case in cases:
        first: dict[str, int] | None = None
        walls: list[float] = []
        for rep in range(repeats):
            t0 = time.perf_counter()
            result = case.run()
            walls.append(time.perf_counter() - t0)
            metrics = _case_metrics(case, result)
            if first is None:
                first = metrics
            elif metrics != first:
                changed = sorted(
                    m for m in set(first) | set(metrics)
                    if first.get(m) != metrics.get(m)
                )
                raise RegressError(
                    f"case {case.id!r} is nondeterministic: repeat {rep} "
                    f"changed {changed} (first={first}, now={metrics})"
                )
        case_payload[case.id] = {"metrics": first}
        advisory[case.id] = median(walls)
    # No run configuration (repeats, timestamps, host) in the payload: the
    # file must be identical however the collection was invoked.
    baseline = {
        "schema": SCHEMA_VERSION,
        "suite": "default",
        "cases": case_payload,
    }
    return baseline, advisory


def dumps(baseline: dict) -> str:
    """Canonical serialization: sorted keys, indent 2, trailing newline."""
    return json.dumps(baseline, indent=2, sort_keys=True) + "\n"


def save(baseline: dict, path: str | Path) -> None:
    Path(path).write_text(dumps(baseline), encoding="utf-8")


def load(path: str | Path) -> dict:
    """Load and sanity-check a baseline file."""
    p = Path(path)
    if not p.exists():
        raise RegressError(
            f"baseline file {p} does not exist; create one with "
            "`python -m repro.bench regress --write " + str(p) + "`"
        )
    try:
        data = json.loads(p.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise RegressError(f"baseline file {p} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or "cases" not in data:
        raise RegressError(f"baseline file {p} has no 'cases' section")
    schema = data.get("schema")
    if schema != SCHEMA_VERSION:
        raise RegressError(
            f"baseline file {p} has schema {schema!r}; this build reads "
            f"schema {SCHEMA_VERSION}"
        )
    return data
