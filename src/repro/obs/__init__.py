"""Observability for coloring runs: tracing, counters, profiling tables.

Three tracer implementations share one protocol (:class:`Tracer`):

* :class:`NullTracer` — the zero-overhead default (no tracer passed);
* :class:`RecordingTracer` — in-memory events, for tests and tables;
* :class:`JsonlTracer` — one JSON line per event, for offline analysis.

Pass any of them as the ``tracer=`` keyword of
:func:`repro.core.bgpc.color_bgpc` / :func:`repro.core.d2gc.color_d2gc`
(or the driver/fastpath entry points they wrap); the CLI flags are
``--trace out.jsonl`` and ``--profile``.  :func:`profile_table` renders
the per-iteration breakdown that reproduces the paper's Figure 1 shape.
See ``docs/observability.md`` for the full event schema.
"""

from repro.obs.profile import iteration_breakdown, profile_table
from repro.obs.tracer import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    TraceEvent,
    Tracer,
    ensure_tracer,
    read_jsonl_trace,
)
from repro.obs.work import SHARD_METRICS, WORK_METRICS, WorkCounters

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RecordingTracer",
    "JsonlTracer",
    "ensure_tracer",
    "read_jsonl_trace",
    "iteration_breakdown",
    "profile_table",
    "SHARD_METRICS",
    "WORK_METRICS",
    "WorkCounters",
]
