"""Per-iteration breakdown tables — the shape of the paper's Figure 1.

A :class:`~repro.types.ColoringResult` already carries one
:class:`~repro.types.IterationRecord` per speculative round; this module
turns that list into the breakdown the paper leads with: how much of the
run each round costs, split into coloring and conflict removal, alongside
the conflict and palette-growth counters.  The CLI's ``--profile`` flag and
the bench harness's ``profile`` experiment both render these rows.

The per-iteration totals are guaranteed to sum to the end-to-end figure of
the run: simulated ``cycles`` for ``backend="sim"`` (phase timings include
every barrier and auxiliary sweep), measured ``wall_seconds`` for every
wall-clock backend — ``numpy`` and ``threaded`` — with a trailing
*setup/overhead* row carrying everything outside the rounds (layout
build, kernel construction, thread pool spin-up).
"""

from __future__ import annotations

from repro.types import ColoringResult

__all__ = ["iteration_breakdown", "profile_table"]


def _share(part: float, total: float) -> float:
    return part / total if total > 0 else 0.0


def iteration_breakdown(result: ColoringResult) -> tuple[list[str], list[tuple]]:
    """``(header, rows)`` of the per-iteration breakdown of ``result``.

    Simulator runs (``backend="sim"``) report simulated cycles per phase;
    wall-clock backends (``numpy``, ``threaded``) report measured wall
    milliseconds per round.  The final ``total`` row sums exactly to
    ``result.cycles`` / ``result.wall_seconds`` respectively; wall-clock
    runs additionally get a ``setup`` row for the time spent outside the
    rounds (group-layout build, permutations, pool spin-up).
    """
    if result.backend != "sim":
        header = ["iter", "|W|", "conflicts", "colors+", "wall ms", "share"]
        rows: list[tuple] = []
        rounds_wall = 0.0
        for rec in result.iterations:
            rounds_wall += rec.wall_seconds
        total = result.wall_seconds if result.wall_seconds > 0 else rounds_wall
        for rec in result.iterations:
            rows.append(
                (
                    rec.index,
                    rec.queue_size,
                    rec.conflicts,
                    max(rec.colors_introduced, 0),
                    rec.wall_seconds * 1e3,
                    f"{_share(rec.wall_seconds, total):.1%}",
                )
            )
        setup = max(total - rounds_wall, 0.0)
        rows.append(
            ("setup", "-", "-", "-", setup * 1e3, f"{_share(setup, total):.1%}")
        )
        rows.append(
            (
                "total",
                "-",
                result.total_conflicts,
                result.num_colors,
                total * 1e3,
                "100.0%",
            )
        )
        return header, rows

    header = [
        "iter",
        "|W|",
        "conflicts",
        "colors+",
        "color cycles",
        "remove cycles",
        "cycles",
        "share",
    ]
    rows = []
    total = float(result.cycles)
    color_sum = remove_sum = 0.0
    for rec in result.iterations:
        color = rec.color_timing.cycles if rec.color_timing else 0.0
        remove = rec.remove_timing.cycles if rec.remove_timing else 0.0
        color_sum += color
        remove_sum += remove
        rows.append(
            (
                rec.index,
                rec.queue_size,
                rec.conflicts,
                max(rec.colors_introduced, 0),
                int(color),
                int(remove),
                int(rec.cycles),
                f"{_share(rec.cycles, total):.1%}",
            )
        )
    rows.append(
        (
            "total",
            "-",
            result.total_conflicts,
            result.num_colors,
            int(color_sum),
            int(remove_sum),
            int(color_sum + remove_sum),
            "100.0%",
        )
    )
    return header, rows


def profile_table(result: ColoringResult) -> str:
    """Rendered per-iteration breakdown (fixed-width ASCII table).

    The shape of the paper's Figure 1: one row per speculative round with
    its queue size, conflicts, palette growth, and cost split — plus a
    closing ``total`` row that matches the end-to-end ``cycles`` /
    ``wall_seconds`` of the run.
    """
    from repro.bench.tables import render_table

    header, rows = iteration_breakdown(result)
    unit = "simulated cycles" if result.backend == "sim" else "wall ms (measured)"
    title = (
        f"per-iteration breakdown — {result.algorithm}, backend "
        f"{result.backend}, {unit}"
    )
    return title + "\n" + render_table(header, rows)
