"""Deterministic work-metric counters for the perf-regression gate.

Wall-clock on a shared CI runner is noise; the *operation counts* of a
deterministic run are not.  This module defines the counter vocabulary the
kernels and backends emit so that two runs of the same code on the same
instance produce byte-identical numbers — the currency of
``python -m repro.bench regress`` (see ``docs/benchmarks.md``):

==================  =========================================================
metric              what it counts
==================  =========================================================
``tasks``           kernel invocations (one per vertex/net per phase)
``probes``          forbidden-set probe steps: every first-fit / reverse
                    first-fit cursor step and explicit membership test
``scans``           adjacency entries touched while *coloring* (the
                    two-hop / net-member traversals of Algs. 2, 4, 8, 9)
``conflict_checks`` adjacency entries examined while *detecting conflicts*
                    (the removal sweeps of Algs. 3, 5, 7, 10)
``queue_pushes``    appends to the next-iteration work queue
``color_writes``    color stores, including ``UNCOLORED`` resets
==================  =========================================================

Kernels accumulate ``probes``/``scans``/``conflict_checks`` on their
:class:`~repro.machine.engine.TaskContext`; the per-task totals are folded
into one :class:`WorkCounters` per phase by whichever engine executed it
(simulated, threaded, process pool, or the vectorized fast path).  The
backend loop then emits each metric through the tracer as a ``work.<metric>``
counter (riding the normal :class:`~repro.obs.tracer.TraceEvent` path) and
attaches the run totals to the ``work_metrics`` dict of
:class:`~repro.types.ColoringResult`.

Determinism caveat: counters from the ``threaded`` and ``process`` backends
are only deterministic with a single worker — real races change how many
conflicts (and hence repair iterations) occur.  The regress suite pins those
backends to one worker for exactly this reason.
"""

from __future__ import annotations

__all__ = ["FASTPATH_METRICS", "SHARD_METRICS", "WORK_METRICS", "WorkCounters"]

#: Canonical metric names, in reporting order.
WORK_METRICS = (
    "tasks",
    "probes",
    "scans",
    "conflict_checks",
    "queue_pushes",
    "color_writes",
)

#: Extra per-shard metrics the ``sharded`` backend attaches to
#: ``ColoringResult.work_metrics`` alongside :data:`WORK_METRICS` — also
#: deterministic, also gated by the regress suite:
#:
#: ==========================  ============================================
#: metric                      what it counts
#: ==========================  ============================================
#: ``shard.interior``          vertices colored with zero cross-talk
#: ``shard.boundary``          vertices resolved through supersteps
#: ``shard.supersteps``        bulk-synchronous boundary rounds executed
#: ``shard.conflicts``         boundary picks lost to a smaller-id neighbor
#: ``shard.comm_words``        int64 words actually exchanged (packed
#:                             ``(id, color)`` frontier pairs)
#: ``shard.comm_messages``     frontier result messages (one per active
#:                             rank per superstep)
#: ==========================  ============================================
#:
#: They are *attached extras*, not :class:`WorkCounters` slots: only the
#: sharded backend produces them, and they count structure (partition
#: quality, exchange volume), not kernel operations.
SHARD_METRICS = (
    "shard.interior",
    "shard.boundary",
    "shard.supersteps",
    "shard.conflicts",
    "shard.comm_words",
    "shard.comm_messages",
)

#: Packed-bitset structure metrics the vectorized fast path attaches to
#: ``ColoringResult.work_metrics`` for speculative runs (``numpy`` and
#: ``compiled`` report the same keys) — attached extras in the same sense
#: as :data:`SHARD_METRICS`:
#:
#: ==============================  ==========================================
#: metric                          what it counts
#: ==============================  ==========================================
#: ``fastpath.palette_words``      widest per-round forbidden mask, in
#:                                 packed uint64 words (64 colors/word)
#: ``fastpath.mask_or_words``      total packed words OR-combined across
#:                                 all rounds (the bitset work volume)
#: ==============================  ==========================================
#:
#: Both are deterministic and gated by the regress suite; both are 0 when
#: no masked round runs (exact mode, or a conflict-free first round).
FASTPATH_METRICS = (
    "fastpath.palette_words",
    "fastpath.mask_or_words",
)


class WorkCounters:
    """One phase's (or run's) deterministic operation counts.

    Plain integer slots — cheap enough to fold per task in the hot loops.
    """

    __slots__ = WORK_METRICS

    def __init__(self) -> None:
        self.tasks = 0
        self.probes = 0
        self.scans = 0
        self.conflict_checks = 0
        self.queue_pushes = 0
        self.color_writes = 0

    def add_task(self, ctx) -> None:
        """Fold one finished task's context counters into this phase."""
        self.tasks += 1
        self.probes += ctx.probes
        self.scans += ctx.scans
        self.conflict_checks += ctx.conflict_checks
        self.queue_pushes += len(ctx.appends)
        self.color_writes += len(ctx.writes)

    def add(self, metric: str, value: int) -> None:
        """Add ``value`` to one metric by name (engine-side bulk counts)."""
        setattr(self, metric, getattr(self, metric) + int(value))

    def merge(self, other: "WorkCounters | dict") -> None:
        """Fold another counter set (or its dict form) into this one."""
        get = other.get if isinstance(other, dict) else lambda m, _=0: getattr(other, m)
        for metric in WORK_METRICS:
            setattr(self, metric, getattr(self, metric) + int(get(metric, 0)))

    def as_dict(self) -> dict[str, int]:
        """Metric name → count, in canonical order (JSON-stable)."""
        return {metric: int(getattr(self, metric)) for metric in WORK_METRICS}

    def emit(self, tracer, **attrs) -> None:
        """Emit every metric as a ``work.<metric>`` counter event."""
        for metric in WORK_METRICS:
            tracer.counter(f"work.{metric}", getattr(self, metric), **attrs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{m}={getattr(self, m)}" for m in WORK_METRICS)
        return f"WorkCounters({inner})"
