"""Structured tracing of coloring runs: spans, counters, and sinks.

The paper's central empirical claim is an *iteration breakdown* — 78–89% of
BGPC runtime lives in the first one or two rounds (Figure 1) — so the
drivers need a way to say *where* time goes, per iteration and per phase,
without the instrumentation itself costing anything when nobody listens.
This module provides that layer:

* :class:`TraceEvent` — one structured event: a **span** (a named interval
  with a measured wall-clock duration and attributes) or a **counter** (a
  named value with attributes).
* :class:`NullTracer` — the zero-overhead default.  Every instrumentation
  site goes through it when no tracer is passed; its span object is a
  shared singleton whose enter/exit do nothing, so the hot loops pay only
  a method call per *round* (never per task).
* :class:`RecordingTracer` — keeps events in memory, in emission order.
  Powers the tests and the profile tables.
* :class:`JsonlTracer` — streams each event as one JSON line to a file
  (CLI flag ``--trace out.jsonl``) for offline analysis.

Event vocabulary used by the instrumented drivers (see
``docs/observability.md`` for the field-by-field schema):

========================  =======  ==========================================
name                      type     emitted by
========================  =======  ==========================================
``run``                   span     one per coloring run (both backends)
``iteration``             span     one per speculative round (sim driver)
``phase``                 span     one per color/remove phase (sim driver)
``round``                 span     one per vectorized round (fastpath)
``setup``                 span     fastpath :class:`~repro.core.fastpath.engine.GroupLayout` build
``machine.phase_cycles``  counter  simulated cycles of one ``parallel_for``
``work.<metric>``         counter  deterministic work totals of one phase or
                                   vectorized round, one event per metric in
                                   :data:`repro.obs.work.WORK_METRICS`
``cache.hit``             counter  coloring-service cache hit (attr ``key``)
``cache.miss``            counter  coloring-service cache miss (attr ``key``)
``cache.eviction``        counter  coloring-service LRU eviction (attr ``key``)
``service.request``       counter  one served request (attrs ``backend``,
                                   ``cached``, ``coalesced``)
``service.batch``         counter  dispatcher batch size (value = requests
                                   dispatched together)
========================  =======  ==========================================
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterator, Protocol, runtime_checkable

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RecordingTracer",
    "JsonlTracer",
    "ensure_tracer",
    "read_jsonl_trace",
]


@dataclass
class TraceEvent:
    """One structured observability event.

    Attributes
    ----------
    type:
        ``"span"`` (a timed interval) or ``"counter"`` (a point value).
    name:
        Event name from the vocabulary above (``"iteration"``, ``"phase"``,
        ``"round"``, ``"run"``, ``"setup"``, ``"machine.phase_cycles"``).
    value:
        For spans: measured wall-clock duration in seconds.  For counters:
        the counted value (e.g. simulated cycles).
    attrs:
        Structured attributes — iteration index, phase (``color`` /
        ``remove``), kernel kind (``vertex`` / ``net``), items processed,
        conflicts found, colors introduced, queue sizes, simulated cycles.
    """

    type: str
    name: str
    value: float
    attrs: dict = field(default_factory=dict)

    def to_json(self) -> str:
        """Stable one-line JSON form (sorted keys, ASCII)."""
        return json.dumps(
            {
                "type": self.type,
                "name": self.name,
                "value": self.value,
                "attrs": self.attrs,
            },
            sort_keys=True,
        )


class _Span:
    """Live span handle: measures wall time, collects late attributes."""

    __slots__ = ("_tracer", "name", "attrs", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._t0 = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._t0
        self._tracer._emit(TraceEvent("span", self.name, wall, self.attrs))
        return False


class _NullSpan:
    """Shared do-nothing span; enter/exit/set are all no-ops."""

    __slots__ = ()

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


@runtime_checkable
class Tracer(Protocol):
    """What the instrumented drivers require from a tracer.

    ``enabled`` lets call sites skip attribute computation that exists only
    for tracing; :meth:`span` opens a timed interval (use as a context
    manager); :meth:`counter` records a point value.
    """

    enabled: bool

    def span(self, name: str, **attrs): ...

    def counter(self, name: str, value: float, **attrs) -> None: ...

    def event(self, type: str, name: str, value: float, **attrs) -> None: ...


class NullTracer:
    """The zero-overhead default: drops everything.

    All instrumentation in :mod:`repro.core.driver` and
    :mod:`repro.core.fastpath.engine` routes through a module-level
    :data:`NULL_TRACER` when no tracer is supplied, so un-traced runs pay
    one attribute check and a no-op call per round.
    """

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def counter(self, name: str, value: float = 1.0, **attrs) -> None:
        return None

    def event(self, type: str, name: str, value: float = 0.0, **attrs) -> None:
        return None


#: Process-wide shared :class:`NullTracer` instance.
NULL_TRACER = NullTracer()


def ensure_tracer(tracer) -> "Tracer":
    """``tracer`` if given, else the shared :data:`NULL_TRACER`."""
    return tracer if tracer is not None else NULL_TRACER


class RecordingTracer:
    """In-memory tracer: every event appended to :attr:`events` in order."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def _emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def span(self, name: str, **attrs) -> _Span:
        return _Span(self, name, attrs)

    def counter(self, name: str, value: float = 1.0, **attrs) -> None:
        self._emit(TraceEvent("counter", name, float(value), attrs))

    def event(self, type: str, name: str, value: float = 0.0, **attrs) -> None:
        """Emit a pre-measured event (e.g. a span timed by the caller)."""
        self._emit(TraceEvent(type, name, float(value), attrs))

    # -- query helpers (used by tests and the profile tables) ---------------

    def spans(self, name: str | None = None) -> list[TraceEvent]:
        """All span events, optionally filtered by name, in order."""
        return [
            e for e in self.events if e.type == "span" and (name is None or e.name == name)
        ]

    def counters(self, name: str | None = None) -> list[TraceEvent]:
        """All counter events, optionally filtered by name, in order."""
        return [
            e
            for e in self.events
            if e.type == "counter" and (name is None or e.name == name)
        ]

    def total(self, name: str, attr: str | None = None) -> float:
        """Sum of ``value`` (or of attribute ``attr``) over events named ``name``."""
        total = 0.0
        for e in self.events:
            if e.name != name:
                continue
            total += float(e.attrs.get(attr, 0.0)) if attr else e.value
        return total

    def clear(self) -> None:
        """Forget all recorded events."""
        self.events.clear()


class JsonlTracer:
    """Streams every event as one JSON line; safe to tail while running.

    Accepts a path (opened and owned, closed by :meth:`close` or the
    context-manager exit) or an already-open text file object (borrowed,
    left open).  Every event is flushed as it is written, so a run that
    dies mid-flight (a raised :class:`~repro.errors.ColoringError`, a
    killed worker) still leaves a fully parseable trace with no truncated
    final line.  Prefer the context-manager form — it closes the sink on
    *every* exit path; :meth:`close` is idempotent either way.  Lines
    round-trip through ``json.loads`` — see :func:`read_jsonl_trace`.
    """

    enabled = True

    def __init__(self, sink: str | Path | IO[str]):
        if hasattr(sink, "write"):
            self._fh: IO[str] = sink  # type: ignore[assignment]
            self._owns = False
        else:
            self._fh = open(sink, "w", encoding="utf-8")
            self._owns = True
        self._closed = False

    def _emit(self, event: TraceEvent) -> None:
        self._fh.write(event.to_json() + "\n")
        # Per-event durability: an exception (or crash) mid-run must not
        # truncate the last buffered event.
        self._fh.flush()

    def span(self, name: str, **attrs) -> _Span:
        return _Span(self, name, attrs)

    def counter(self, name: str, value: float = 1.0, **attrs) -> None:
        self._emit(TraceEvent("counter", name, float(value), attrs))

    def event(self, type: str, name: str, value: float = 0.0, **attrs) -> None:
        """Emit a pre-measured event (e.g. a span timed by the caller)."""
        self._emit(TraceEvent(type, name, float(value), attrs))

    def close(self) -> None:
        """Flush and close the sink (if this tracer opened it); idempotent."""
        if self._closed:
            return
        self._closed = True
        self._fh.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "JsonlTracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def read_jsonl_trace(path: str | Path) -> Iterator[TraceEvent]:
    """Parse a :class:`JsonlTracer` file back into :class:`TraceEvent` s."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            yield TraceEvent(
                type=payload["type"],
                name=payload["name"],
                value=float(payload["value"]),
                attrs=payload["attrs"],
            )
