"""Vertex orderings for greedy coloring.

The order in which a greedy colorer processes vertices strongly influences
the number of colors (paper §VII; Matula–Beck smallest-last, Welsh–Powell
largest-first).  The paper's Table II and Table IV use ColPack's
**smallest-last** order "to reduce the number of distinct colors"; the other
tables use the **natural** order.

All orderings here operate on the *conflict structure* of the problem: for
BGPC the degree of a ``V_A`` vertex is its distance-2 (two-hop) degree
through the nets, for D2GC its distance-≤2 degree.  Each function returns a
permutation array ``perm`` such that the greedy colorer should process
``perm[0], perm[1], ...`` in that sequence.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.ops import bgpc_conflict_graph, d2gc_conflict_graph
from repro.graph.unipartite import Graph

__all__ = [
    "natural_order",
    "random_order",
    "largest_first_order",
    "smallest_last_order",
    "incidence_degree_order",
    "bgpc_two_hop_degrees",
    "ORDERINGS",
    "get_ordering",
]


def _conflict_adjacency(instance: BipartiteGraph | Graph):
    """Materialized conflict graph of a BGPC or D2GC instance."""
    if isinstance(instance, BipartiteGraph):
        return bgpc_conflict_graph(instance).adj
    if isinstance(instance, Graph):
        return d2gc_conflict_graph(instance).adj
    raise GraphError(f"unsupported instance type {type(instance).__name__}")


def _num_targets(instance: BipartiteGraph | Graph) -> int:
    return (
        instance.num_vertices
        if isinstance(instance, (BipartiteGraph, Graph))
        else 0
    )


def bgpc_two_hop_degrees(bg: BipartiteGraph) -> np.ndarray:
    """Cheap upper bound on each vertex's conflict degree.

    ``d(u) = Σ_{v ∈ nets(u)} (|vtxs(v)| − 1)`` counts two-hop walks, i.e.
    conflict neighbours *with multiplicity*.  It over-counts vertices
    reachable through several shared nets but costs only O(|E|), which is
    why ColPack uses this flavour for large instances.
    """
    net_degs = bg.net_to_vtxs.degrees()
    contributions = net_degs[bg.vtx_to_nets.idx] - 1
    out = np.zeros(bg.num_vertices, dtype=np.int64)
    np.add.at(out, np.repeat(np.arange(bg.num_vertices), bg.vtx_to_nets.degrees()), contributions)
    return out


def natural_order(instance: BipartiteGraph | Graph) -> np.ndarray:
    """The identity permutation (the paper's "natural row order")."""
    return np.arange(_num_targets(instance), dtype=np.int64)


def random_order(instance: BipartiteGraph | Graph, seed: int = 0) -> np.ndarray:
    """A seeded uniformly random permutation."""
    rng = np.random.default_rng(seed)
    return rng.permutation(_num_targets(instance)).astype(np.int64)


def largest_first_order(instance: BipartiteGraph | Graph) -> np.ndarray:
    """Welsh–Powell: non-increasing conflict degree, ties by vertex id."""
    adj = _conflict_adjacency(instance)
    degrees = adj.degrees()
    # stable sort on -degree keeps id order within equal degrees.
    return np.argsort(-degrees, kind="stable").astype(np.int64)


def smallest_last_order(instance: BipartiteGraph | Graph) -> np.ndarray:
    """Matula–Beck smallest-last order on the conflict graph.

    Repeatedly removes a minimum-residual-degree vertex; the coloring order
    is the reverse of the removal order.  Implemented with the classical
    bucket queue in O(|V| + |E|) over the *materialized* conflict graph —
    exact, as in ColPack's ``SMALLEST_LAST`` for partial distance-2
    coloring.
    """
    adj = _conflict_adjacency(instance)
    n = adj.nrows
    if n == 0:
        return np.empty(0, dtype=np.int64)
    degree = adj.degrees().copy()
    max_deg = int(degree.max(initial=0))

    # Bucket queue: doubly linked lists threaded through arrays.
    head = np.full(max_deg + 1, -1, dtype=np.int64)
    nxt = np.full(n, -1, dtype=np.int64)
    prv = np.full(n, -1, dtype=np.int64)
    where = degree.copy()
    # Insert in reverse id order so each bucket pops smallest id first.
    for v in range(n - 1, -1, -1):
        d = int(degree[v])
        nxt[v] = head[d]
        if head[d] != -1:
            prv[head[d]] = v
        head[d] = v
        prv[v] = -1

    removed = np.zeros(n, dtype=bool)
    removal = np.empty(n, dtype=np.int64)
    cur_min = 0

    def _detach(v: int) -> None:
        d = int(where[v])
        p, q = int(prv[v]), int(nxt[v])
        if p != -1:
            nxt[p] = q
        else:
            head[d] = q
        if q != -1:
            prv[q] = p

    def _insert(v: int, d: int) -> None:
        where[v] = d
        nxt[v] = head[d]
        if head[d] != -1:
            prv[head[d]] = v
        head[d] = v
        prv[v] = -1

    for step in range(n):
        while cur_min <= max_deg and head[cur_min] == -1:
            cur_min += 1
        v = int(head[cur_min])
        _detach(v)
        removed[v] = True
        removal[step] = v
        for u in adj.row(v):
            u = int(u)
            if removed[u]:
                continue
            _detach(u)
            d = int(where[u]) - 1
            _insert(u, d)
            if d < cur_min:
                cur_min = d
    return removal[::-1].copy()


def incidence_degree_order(instance: BipartiteGraph | Graph) -> np.ndarray:
    """Incidence-degree order: repeatedly pick the uncolored vertex with the
    most already-ordered conflict neighbours (ties: larger degree, then id).

    This is ColPack's ``INCIDENCE_DEGREE``; like smallest-last it works on
    the materialized conflict graph.
    """
    adj = _conflict_adjacency(instance)
    n = adj.nrows
    if n == 0:
        return np.empty(0, dtype=np.int64)
    degrees = adj.degrees()
    incidence = np.zeros(n, dtype=np.int64)
    chosen = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    # Lazy max tracking via a simple heap of (-incidence, -degree, id).
    import heapq

    heap = [(-0, -int(degrees[v]), v) for v in range(n)]
    heapq.heapify(heap)
    count = 0
    while count < n:
        inc_neg, _, v = heapq.heappop(heap)
        if chosen[v] or -inc_neg != incidence[v]:
            continue  # stale entry
        chosen[v] = True
        order[count] = v
        count += 1
        for u in adj.row(v):
            u = int(u)
            if not chosen[u]:
                incidence[u] += 1
                heapq.heappush(heap, (-int(incidence[u]), -int(degrees[u]), u))
    return order


#: Registry used by the benchmark harness (Table II/IV select by name).
ORDERINGS = {
    "natural": natural_order,
    "random": random_order,
    "largest-first": largest_first_order,
    "smallest-last": smallest_last_order,
    "incidence-degree": incidence_degree_order,
}


def get_ordering(name: str):
    """Look up an ordering function by its registry name."""
    try:
        return ORDERINGS[name]
    except KeyError:
        raise KeyError(
            f"unknown ordering {name!r}; choose from {sorted(ORDERINGS)}"
        ) from None
