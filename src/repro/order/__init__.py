"""Vertex ordering heuristics (ColPack-style) for the greedy colorers."""

from repro.order.orderings import (
    natural_order,
    random_order,
    largest_first_order,
    smallest_last_order,
    incidence_degree_order,
    bgpc_two_hop_degrees,
    ORDERINGS,
    get_ordering,
)

__all__ = [
    "natural_order",
    "random_order",
    "largest_first_order",
    "smallest_last_order",
    "incidence_degree_order",
    "bgpc_two_hop_degrees",
    "ORDERINGS",
    "get_ordering",
]
