"""``python -m repro`` — the coloring CLI (see :mod:`repro.cli`)."""

import sys

from repro.cli import main

sys.exit(main())
