"""Quickstart: color the columns of a sparse matrix pattern with BGPC.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    bipartite_from_dense,
    color_bgpc,
    color_stats,
    sequential_bgpc,
    validate_bgpc,
)

# A small random sparsity pattern: 40 equations (rows = nets) over
# 60 variables (columns = the vertices BGPC colors).
rng = np.random.default_rng(42)
pattern = (rng.random((40, 60)) < 0.12).astype(int)
bg = bipartite_from_dense(pattern)
print(f"instance: {bg}  (color lower bound L = {bg.color_lower_bound()})")

# Sequential greedy baseline — the reference both for colors and cycles.
seq = sequential_bgpc(bg)
validate_bgpc(bg, seq.colors)
print(f"sequential greedy: {seq.num_colors} colors, {seq.cycles:.0f} simulated cycles")

# The paper's fastest variant on a simulated 16-core machine.
result = color_bgpc(bg, algorithm="N1-N2", threads=16)
validate_bgpc(bg, result.colors)  # raises InvalidColoringError if broken
print(
    f"N1-N2 on 16 simulated cores: {result.num_colors} colors, "
    f"{result.num_iterations} rounds, {result.total_conflicts} conflicts, "
    f"{result.cycles:.0f} cycles -> speedup {seq.cycles / result.cycles:.2f}x"
)

# Per-round trace: the speculative color -> detect-conflicts loop.
for rec in result.iterations:
    print(
        f"  round {rec.index}: |W| = {rec.queue_size}, "
        f"conflicts -> {rec.conflicts}"
    )

# Color-class statistics (what the balancing heuristics of Section V target).
stats = color_stats(result.colors)
print(
    f"color classes: {stats.num_colors}, sizes min/mean/max = "
    f"{stats.min}/{stats.mean:.1f}/{stats.max}, std = {stats.std:.2f}"
)
