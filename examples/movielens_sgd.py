"""Lock-free matrix factorization scheduled by BGPC (the paper's motivation).

The introduction names matrix decomposition on MovieLens as the application
behind this work: SGD updates over ratings race on shared user/item factors,
and a bipartite partial coloring of the rating matrix yields a lock-free
schedule.  This example:

1. generates a MovieLens-like synthetic rating matrix,
2. colors its columns with N1-N2 (unbalanced) and with the B2 balancing
   heuristic,
3. runs color-scheduled SGD and reports convergence, and
4. compares the parallel utilization of both schedules — the Section V
   argument that balanced color classes feed more cores.

Run:  python examples/movielens_sgd.py
"""

import numpy as np

from repro import B2Policy, color_bgpc
from repro.apps import ColorSchedule, sgd_factorize
from repro.datasets import movielens_like

CORES = 16

bg = movielens_like(num_nets=300, num_vertices=900, avg_net_size=18,
                    max_net_size=260, seed=11)
print(f"rating pattern: {bg.num_nets} users x {bg.num_vertices} items, "
      f"{bg.num_edges} ratings")

# Ground-truth low-rank structure + noise, so SGD has something to find.
rng = np.random.default_rng(5)
true_p = rng.normal(size=(bg.num_nets, 4))
true_q = rng.normal(size=(bg.num_vertices, 4))
user_of_entry = np.repeat(np.arange(bg.num_nets), bg.net_to_vtxs.degrees())
item_of_entry = bg.net_to_vtxs.idx
ratings = np.einsum(
    "ij,ij->i", true_p[user_of_entry], true_q[item_of_entry]
) + rng.normal(scale=0.1, size=bg.num_edges)

P, Q, losses, stats = sgd_factorize(
    bg, ratings, rank=4, epochs=8, threads=CORES, algorithm="N1-N2"
)
print(f"RMSE per epoch: {[round(l, 3) for l in losses]}")
assert losses[-1] < losses[0], "SGD must reduce the training RMSE"

# Utilization comparison: unbalanced vs B2-balanced schedule.
for label, policy in (("unbalanced (U)", None), ("balanced (B2)", B2Policy())):
    result = color_bgpc(bg, algorithm="N1-N2", threads=CORES, policy=policy)
    schedule = ColorSchedule(bg, result.colors)
    schedule.assert_lock_free()
    s = schedule.stats(CORES)
    print(
        f"{label}: {s.num_steps} parallel steps, "
        f"{s.actual_rounds} rounds of {CORES} cores "
        f"(ideal {s.ideal_rounds}) -> utilization {s.utilization:.2f}"
    )
