"""Distance-k coloring — the paper's §VIII future-work extension, working.

The paper closes by suggesting the optimistic BGPC/D2GC techniques extend to
distance-k coloring.  This example colors a mesh at k = 1..4 and shows:

* k = 1 is ordinary graph coloring, k = 2 matches D2GC exactly;
* even k admits the net-based kernels (radius-k/2 ball sweeps), odd k runs
  the vertex-based variants;
* colors grow with k (the radius-k ball is a clique in G^k).

Run:  python examples/distance_k.py
"""

from repro import validate_d2gc
from repro.core.distk import color_distk, sequential_distk, validate_distk
from repro.datasets import channel_mesh
from repro.graph.ops import bipartite_to_graph

g = bipartite_to_graph(channel_mesh(nx=8, ny=6, nz=6))
print(f"mesh: {g}  (max degree {g.max_degree()})")

for k in (1, 2, 3, 4):
    algorithm = "N1-N2" if k % 2 == 0 else "V-V-64D"
    seq = sequential_distk(g, k)
    par = color_distk(g, k, algorithm=algorithm, threads=16)
    validate_distk(g, k, par.colors)
    print(
        f"k={k}: {par.num_colors:3d} colors ({algorithm}), "
        f"{par.total_conflicts:4d} conflicts over {par.num_iterations} rounds, "
        f"speedup {seq.cycles / par.cycles:.2f}x over sequential"
    )

# Sanity: a distance-2 coloring from the extension is a valid D2GC coloring.
result = color_distk(g, 2, algorithm="N1-N2", threads=16)
validate_d2gc(g, result.colors)
print("OK: distance-2 via the extension validates against the D2GC checker.")
