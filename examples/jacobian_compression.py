"""Sparse Jacobian estimation with BGPC column compression.

The classical use-case that motivates bipartite-graph partial coloring
(paper §I): estimating the Jacobian of a sparse vector function with far
fewer evaluations than one per variable.

We build a nonlinear discretized-PDE-style residual on a 1-D mesh whose
Jacobian is banded, color its columns, and recover the full Jacobian from
``num_colors + 1`` function evaluations instead of ``n + 1``.

Run:  python examples/jacobian_compression.py
"""

import numpy as np
from scipy import sparse

from repro.apps import JacobianCompressor

N = 400  # variables
BAND = 3  # each residual couples 2*BAND+1 unknowns


def residual(x: np.ndarray) -> np.ndarray:
    """A nonlinear banded residual: r_i = x_i^2 + sum of neighbour terms."""
    out = x**2
    for offset in range(1, BAND + 1):
        out[:-offset] += np.sin(x[offset:]) * 0.5
        out[offset:] += 0.25 * x[:-offset] * x[offset:]
    return out


# Sparsity pattern of the Jacobian (banded with half-width BAND).
diags = [np.ones(N - abs(k)) for k in range(-BAND, BAND + 1)]
pattern = sparse.diags(diags, range(-BAND, BAND + 1)).tocsr()
pattern.data[:] = 1.0

compressor = JacobianCompressor(pattern, algorithm="N1-N2", threads=16)
print(
    f"pattern: {N}x{N}, {pattern.nnz} nonzeros; "
    f"colors = {compressor.num_colors} "
    f"(compression {compressor.compression_ratio:.1f}x, "
    f"lower bound {compressor.graph.color_lower_bound()})"
)
print(
    f"evaluations needed: {compressor.num_colors + 1} "
    f"instead of {N + 1} (one per variable)"
)

x0 = np.linspace(0.1, 1.0, N)
jac_estimated = compressor.estimate(residual, x0, eps=1e-7)

# Check against a one-column-at-a-time finite-difference reference on a
# random sample of columns: the compressed estimate must agree exactly
# (same differencing formula, just batched by color).
eps = 1e-7
base = residual(x0)
max_err = 0.0
sample = np.random.default_rng(0).choice(N, size=12, replace=False)
for j in sample:
    perturbed = x0.copy()
    perturbed[j] += eps
    reference_col = (residual(perturbed) - base) / eps
    estimated_col = jac_estimated[:, j].toarray().ravel()
    nonzero_rows = pattern[:, j].nonzero()[0]
    max_err = max(
        max_err,
        float(np.abs(estimated_col[nonzero_rows] - reference_col[nonzero_rows]).max()),
    )
print(f"max |compressed - reference| over {sample.size} sampled columns: {max_err:.2e}")
assert max_err < 1e-12, "compressed recovery must match column-wise differencing"
print("OK: compressed Jacobian matches column-wise finite differences.")
