"""Sparse Hessian recovery via distance-2 coloring (the D2GC application).

We minimize-style a chain-structured function (think 1-D discretized energy)
whose Hessian is tridiagonal-plus-next-nearest, distance-2 color its
adjacency graph, and recover the full Hessian from ``num_colors + 1``
gradient evaluations.

Run:  python examples/hessian_recovery.py
"""

import numpy as np
from scipy import sparse

from repro.apps import HessianCompressor

N = 300


def gradient(x: np.ndarray) -> np.ndarray:
    """Gradient of f(x) = sum(x_i^4) + sum x_i x_{i+1} + 0.5 sum x_i x_{i+2}."""
    g = 4 * x**3
    g[:-1] += x[1:]
    g[1:] += x[:-1]
    g[:-2] += 0.5 * x[2:]
    g[2:] += 0.5 * x[:-2]
    return g


def true_hessian(x: np.ndarray) -> np.ndarray:
    h = np.diag(12 * x**2)
    for i in range(N - 1):
        h[i, i + 1] = h[i + 1, i] = 1.0
    for i in range(N - 2):
        h[i, i + 2] = h[i + 2, i] = 0.5
    return h


# Sparsity pattern: pentadiagonal, symmetric.
pattern = sparse.diags(
    [np.ones(N - 2), np.ones(N - 1), np.ones(N), np.ones(N - 1), np.ones(N - 2)],
    [-2, -1, 0, 1, 2],
).tocsr()

compressor = HessianCompressor(pattern, algorithm="V-N2", threads=8)
print(
    f"pattern: {N}x{N} pentadiagonal; D2GC colors = {compressor.num_colors} "
    f"(lower bound {compressor.graph.color_lower_bound()}), "
    f"compression {compressor.compression_ratio:.1f}x"
)

x0 = np.linspace(-1.0, 1.0, N)
estimated = compressor.estimate(gradient, x0, eps=1e-6).toarray()
reference = true_hessian(x0)
err = np.abs(estimated - reference).max()
print(f"gradient evaluations: {compressor.num_colors + 1} instead of {N + 1}")
print(f"max |estimated - analytic| = {err:.2e}")
assert err < 1e-4, "finite-difference Hessian should match the analytic one"
print("OK: Hessian recovered through the distance-2 coloring.")
