"""Distributed and hybrid BGPC — the lineage around the paper.

The paper's shared-memory algorithms descend from a distributed-memory
superstep framework (Bozdağ et al.) and sit next to hybrid MPI+OpenMP
implementations by the same authors.  This example runs all three flavours
on one instance and contrasts their accounting:

* pure shared-memory (the paper's N1-N2 on 16 simulated cores),
* pure distributed (4 ranks, batched boundary supersteps),
* hybrid (4 ranks x 4 simulated cores each).

Run:  python examples/distributed_coloring.py
"""

from repro import color_bgpc, sequential_bgpc, validate_bgpc
from repro.datasets import channel_mesh
from repro.dist import (
    distributed_bgpc,
    hybrid_bgpc,
    partition_bfs,
    partition_random,
)

bg = channel_mesh(nx=12, ny=9, nz=9)
print(f"instance: {bg}  (L = {bg.color_lower_bound()})")
seq = sequential_bgpc(bg)
print(f"sequential: {seq.num_colors} colors, {seq.cycles:.2e} cycles\n")

# Shared-memory (the paper's contribution).
shared = color_bgpc(bg, algorithm="N1-N2", threads=16)
validate_bgpc(bg, shared.colors)
print(
    f"shared 16T   : {shared.num_colors} colors, "
    f"{shared.total_conflicts} conflicts, {shared.cycles:.2e} cycles "
    f"({seq.cycles / shared.cycles:.2f}x)"
)

# Distributed (4 ranks, BFS-grown partition — the vertex labels of the
# synthetic mesh are scattered, so a naive block partition has no locality;
# a topological partition keeps the boundary small).
dist = distributed_bgpc(
    bg, ranks=4, batch=150, partition=partition_bfs(bg, 4)
)
validate_bgpc(bg, dist.colors)
print(
    f"dist 4 ranks : {dist.num_colors} colors, {dist.conflicts} conflicts, "
    f"{dist.supersteps} supersteps, {dist.comm_words} words exchanged, "
    f"{dist.cycles:.2e} cycles ({seq.cycles / dist.cycles:.2f}x)"
)
print(
    f"               interior {dist.interior} / boundary {dist.boundary} "
    "(BFS partition keeps the boundary bounded)"
)

# A random partition maximizes the boundary — the classic anti-pattern.
scattered = distributed_bgpc(
    bg, ranks=4, batch=150,
    partition=partition_random(bg.num_vertices, 4, seed=1),
)
validate_bgpc(bg, scattered.colors)
print(
    f"dist random  : boundary {scattered.boundary} "
    f"(vs {dist.boundary}), {scattered.comm_words} words "
    f"(vs {dist.comm_words}) — partition quality matters"
)

# Hybrid: ranks of multicores (intra-rank races + cross-rank conflicts).
hybrid = hybrid_bgpc(
    bg, ranks=4, threads_per_rank=4, batch=150,
    partition=partition_bfs(bg, 4),
)
validate_bgpc(bg, hybrid.colors)
print(
    f"hybrid 4x4   : {hybrid.num_colors} colors, {hybrid.conflicts} "
    f"conflicts, {hybrid.supersteps} supersteps, "
    f"{hybrid.cycles:.2e} cycles ({seq.cycles / hybrid.cycles:.2f}x)"
)
