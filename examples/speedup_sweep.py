"""Mini Table-III: sweep the paper's eight algorithms on one instance.

Colors the channel-like mesh with every algorithm at t = 2, 4, 8, 16
simulated cores and prints speedups over the sequential greedy baseline —
a one-instance slice of the paper's Table III (the full harness lives in
``python -m repro.bench``).

Run:  python examples/speedup_sweep.py [dataset]
"""

import sys

from repro import BGPC_ALGORITHMS, color_bgpc, sequential_bgpc, validate_bgpc
from repro.datasets import load_dataset

dataset = sys.argv[1] if len(sys.argv) > 1 else "channel"
bg = load_dataset(dataset, "small")
print(f"dataset {dataset!r}: {bg}  (L = {bg.color_lower_bound()})")

seq = sequential_bgpc(bg)
print(f"sequential: {seq.num_colors} colors, {seq.cycles:.2e} cycles\n")

header = f"{'alg':9s} {'colors':>6s} " + " ".join(f"t={t:<5d}" for t in (2, 4, 8, 16))
print(header)
print("-" * len(header))
for alg in BGPC_ALGORITHMS:
    speedups = []
    colors = None
    for t in (2, 4, 8, 16):
        result = color_bgpc(bg, algorithm=alg, threads=t)
        validate_bgpc(bg, result.colors)
        speedups.append(seq.cycles / result.cycles)
        colors = result.num_colors
    print(
        f"{alg:9s} {colors:6d} "
        + " ".join(f"{s:5.2f}x" for s in speedups)
    )

print(
    "\nExpected shape (paper Table III): V-V slowest, chunk-64 variants "
    "faster, net-based conflict removal (V-N*) faster still, N1-N2 fastest."
)
