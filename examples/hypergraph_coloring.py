"""Hypergraph pin coloring through the BGPC machinery.

The paper frames BGPC as hypergraph coloring (pins = V_A, nets = V_B).
This example builds a circuit-style hypergraph (nets = signals connecting
cell pins), writes/reads it in the PaToH-like text format, and colors the
pins so no signal net carries two same-colored pins — e.g. to schedule
conflict-free parallel updates of cells.

Run:  python examples/hypergraph_coloring.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.graph.hypergraph import Hypergraph, read_patoh

rng = np.random.default_rng(33)

# A synthetic netlist: 400 cells (pins), 260 signal nets of 2-12 pins each,
# plus a couple of high-fanout clock/reset nets.
NUM_PINS = 400
nets = []
for _ in range(260):
    size = int(rng.integers(2, 13))
    nets.append(sorted(rng.choice(NUM_PINS, size=size, replace=False).tolist()))
nets.append(sorted(rng.choice(NUM_PINS, size=90, replace=False).tolist()))  # clock
nets.append(sorted(rng.choice(NUM_PINS, size=60, replace=False).tolist()))  # reset

hg = Hypergraph.from_nets(nets, num_pins=NUM_PINS)
print(f"netlist: {hg}")
print(f"max net size (color lower bound): {hg.max_net_size()}")

# Round-trip through the PaToH-style file format.
with tempfile.TemporaryDirectory() as tmp:
    path = Path(tmp) / "netlist.hgr"
    with open(path, "w") as fh:
        fh.write(f"{hg.num_nets} {hg.num_pins} {hg.num_pin_entries}\n")
        for net_id in range(hg.num_nets):
            fh.write(" ".join(str(int(p)) for p in hg.pins(net_id)) + "\n")
    loaded = read_patoh(path)
    assert loaded.num_pin_entries == hg.num_pin_entries
    print(f"round-tripped through {path.name}: {loaded}")

# Color the pins with the paper's fastest variant.
result = hg.color(algorithm="N1-N2", threads=16)
hg.validate(result.colors)
print(
    f"N1-N2: {result.num_colors} colors, {result.num_iterations} rounds, "
    f"{result.total_conflicts} conflicts"
)

# The schedule interpretation: pins of one color can be processed together
# without two of them ever sharing a signal.
classes = np.bincount(result.colors)
print(
    f"parallel steps: {classes.size}; largest step {classes.max()} pins, "
    f"smallest {classes.min()}"
)
