"""Incremental recoloring: evolve a colored graph epoch by epoch.

A bipartite instance is colored once, then mutated through several
epochs of localized edge churn.  Each epoch is recolored twice — from
scratch, and incrementally from the previous epoch's coloring via the
two-hop frontier rule (docs/incremental.md) — and the deterministic
work counters (probes + conflict checks) show what the frontier
restriction saves.  Every incremental result is validated against the
mutated graph, and the cumulative savings ratio is asserted at the end.

Run:  python examples/incremental_recolor.py
"""

from repro import color_bgpc
from repro.bench.experiments.incremental import make_delta
from repro.core.incremental import recolor_incremental
from repro.datasets.synthetic import random_bipartite

ALGORITHM = "V-V"
THREADS = 8
EPOCHS = 5
CHURN = 4  # edges deleted AND inserted per epoch


def work(metrics: dict) -> int:
    """The savings metric: probes + conflict checks."""
    return int(metrics.get("probes", 0)) + int(metrics.get("conflict_checks", 0))


bg = random_bipartite(300, 1200, density=0.01, seed=42)
base = color_bgpc(bg, algorithm=ALGORITHM, threads=THREADS)
print(f"instance: {bg.num_vertices} vertices, {bg.num_nets} nets, "
      f"{bg.num_edges} edges")
print(f"base run: {base.num_colors} colors, "
      f"work = {work(base.work_metrics)} ({ALGORITHM}, {THREADS} threads)\n")

graph, colors = bg, base.colors
total_full = total_inc = 0
for epoch in range(1, EPOCHS + 1):
    delta = make_delta(graph, CHURN, seed=100 + epoch)
    inc = recolor_incremental(graph, colors, delta,
                              algorithm=ALGORITHM, threads=THREADS)
    # recolor_incremental validated inc.colors against the mutated graph;
    # the from-scratch run on the same graph is the cost comparator.
    full = color_bgpc(inc.graph, algorithm=ALGORITHM, threads=THREADS)
    w_inc, w_full = work(inc.work_metrics), work(full.work_metrics)
    total_inc += w_inc
    total_full += w_full
    print(f"epoch {epoch}: +{inc.num_insertions}/-{inc.num_deletions} edges, "
          f"frontier {inc.frontier_size:4d}  |  "
          f"incremental {inc.num_colors} colors, work {w_inc:6d}  |  "
          f"from scratch {full.num_colors} colors, work {w_full}")
    graph, colors = inc.graph, inc.colors

ratio = total_full / total_inc
print(f"\n{EPOCHS} epochs: incremental work {total_inc}, "
      f"from-scratch work {total_full} — {ratio:.1f}x saved")
assert ratio >= 5, f"expected >= 5x cumulative savings, got {ratio:.1f}x"
print("every epoch's incremental coloring validated on the mutated graph")
