"""Coloring service: duplicate requests hit the cache at zero cost.

Starts the NDJSON coloring server in-process, submits the same
MatrixMarket-derived instance twice over a real TCP connection, and
prints what the second request cost: nothing.  The per-request
``work_metrics`` are the service's cost accounting — a fresh run is
charged the backend's deterministic work counters, a cache hit is
charged all zeros.  See docs/service.md for the protocol.

Run:  python examples/coloring_service.py
"""

import asyncio
import tempfile
from pathlib import Path

import numpy as np

from repro import bipartite_from_dense
from repro.graph.mmio import read_matrix_market, write_matrix_market
from repro.service import ColoringServer, ColoringService, ServiceClient

# A small sparsity pattern, round-tripped through MatrixMarket so the
# requests are mtx-derived exactly like a CLI workload's would be.
rng = np.random.default_rng(7)
pattern = (rng.random((30, 50)) < 0.15).astype(int)
with tempfile.TemporaryDirectory() as tmp:
    path = Path(tmp) / "service_demo.mtx"
    write_matrix_market(bipartite_from_dense(pattern), path)
    bg = read_matrix_market(path)
print(f"instance: {bg}")


def drive(host: str, port: int) -> None:
    """The client side: one connection, a duplicate pair of requests."""
    with ServiceClient(host, port) as client:
        for attempt in (1, 2):
            response = client.color(
                bg, algorithm="N1-N2", backend="sim", threads=4, id=attempt
            )
            assert response["ok"], response
            served = "cache hit" if response["cached"] else "fresh run"
            work = sum(response["work_metrics"].values())
            print(
                f"request {attempt}: {response['num_colors']} colors "
                f"({served}), work charged = {work}"
            )
            print(f"  work_metrics = {response['work_metrics']}")
            if attempt == 2:
                assert response["cached"], "duplicate should be served from cache"
                assert work == 0, "cache hits must cost zero backend work"
        stats = client.stats()["stats"]
        cache = stats["cache"]
        print(
            f"service totals: {stats['requests']} requests, "
            f"{stats['executed']} executed, {cache['hits']} cache hit(s), "
            f"work saved = {sum(stats['work_saved'].values())}"
        )
        client.shutdown()


async def main() -> None:
    service = ColoringService(cache_size=16)
    server = ColoringServer(service, host="127.0.0.1", port=0)
    await server.start()
    print(f"server listening on {server.host}:{server.port}")
    await asyncio.to_thread(drive, server.host, server.port)
    await server.serve_until_shutdown()
    print("server shut down cleanly")


if __name__ == "__main__":
    asyncio.run(main())
