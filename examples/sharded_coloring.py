"""Sharded coloring — the distributed superstep protocol, really executed.

``backend="sharded"`` runs the interior/boundary protocol of
``distributed_bgpc`` on a real pool of worker processes: the graph is
partitioned across shards, interior vertices are colored per-shard with no
cross-talk, and boundary vertices are resolved in bulk-synchronous
supersteps that exchange packed ``(vertex, color)`` frontier arrays.  The
``shard.*`` work metrics report the *actual* traffic, not a model charge.

This example sweeps the registered partitioners on a 3D channel mesh,
shows how partition quality turns into boundary size and exchanged words,
and checks the backend against the distributed simulator (the oracle).

Run:  python examples/sharded_coloring.py
"""

import numpy as np

from repro import color_bgpc, validate_bgpc
from repro.datasets import channel_mesh
from repro.dist import distributed_bgpc, get_partitioner, partitioner_names
from repro.graph.bipartite import BipartiteGraph

SHARDS = 2
bg = channel_mesh(nx=8, ny=6, nz=6)
print(f"instance: {bg}  ({SHARDS} shards)\n")

# Sweep the partitioner registry: boundary fraction and real exchanged
# words are what an edge-cut-aware partition buys.
print(f"{'partitioner':<12} {'colors':>6} {'boundary':>8} {'steps':>5} "
      f"{'conflicts':>9} {'words':>6} {'msgs':>5}")
results = {}
for name in partitioner_names():
    result = color_bgpc(
        bg, "V-V", threads=SHARDS, backend="sharded", partitioner=name
    )
    validate_bgpc(bg, result.colors)
    results[name] = result
    wm = result.work_metrics
    print(
        f"{name:<12} {result.num_colors:>6} {wm['shard.boundary']:>8} "
        f"{wm['shard.supersteps']:>5} {wm['shard.conflicts']:>9} "
        f"{wm['shard.comm_words']:>6} {wm['shard.comm_messages']:>5}"
    )

bfs = results["bfs"].work_metrics
rnd = results["random"].work_metrics
assert bfs["shard.boundary"] < rnd["shard.boundary"], (
    "BFS partition should cut the boundary below random's"
)
assert bfs["shard.comm_words"] < rnd["shard.comm_words"]
print(
    f"\nBFS vs random: boundary {bfs['shard.boundary']} vs "
    f"{rnd['shard.boundary']}, words {bfs['shard.comm_words']} vs "
    f"{rnd['shard.comm_words']} — topology-aware partitions pay off in "
    "real communication."
)

# The distributed simulator stays the reference oracle: same partition and
# batch give exactly the same colors, supersteps and conflicts.  (Partition
# the backend's own constraint-group view — net orderings differ.)
gview = BipartiteGraph.from_net_to_vtxs(bg.net_to_vtxs)
part = get_partitioner("bfs")(gview, SHARDS)
oracle = distributed_bgpc(bg, ranks=SHARDS, batch=100, partition=part)
assert np.array_equal(results["bfs"].colors, oracle.colors)
assert bfs["shard.supersteps"] == oracle.supersteps
assert bfs["shard.conflicts"] == oracle.conflicts
print(
    f"oracle parity: {oracle.num_colors} colors, {oracle.supersteps} "
    "supersteps, colors identical to the simulator."
)
