"""Setuptools shim.

This environment ships setuptools without the ``wheel`` package, so PEP 660
editable installs (``pip install -e .`` via the PEP 517 path) fail with
``invalid command 'bdist_wheel'``.  Keeping a ``setup.py`` lets
``pip install -e . --no-use-pep517 --no-build-isolation`` take the legacy
``setup.py develop`` path, which needs no wheel.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
