"""Bench: regenerate paper Figure 3 (sorted cardinality curves)."""

from benchmarks.conftest import run_and_render
from repro.bench.experiments import figure3


def test_figure3(benchmark, scale):
    result = run_and_render(benchmark, figure3.run, scale, threads=16)
    curves = result.data["curves"]
    for alg in ("V-N2", "N1-N2"):
        # Balanced heads are no taller than the unbalanced head.
        assert curves[f"{alg}-B2"][0] <= curves[f"{alg}-U"][0]
