"""Bench: regenerate paper Table II (dataset properties + sequential runs)."""

from benchmarks.conftest import run_and_render
from repro.bench.experiments import table2


def test_table2(benchmark, scale):
    result = run_and_render(benchmark, table2.run, scale)
    assert len(result.rows) == 8
    # Paper shape: smallest-last reduces colors on most instances.
    assert result.data["sl_reduces"] >= 5
