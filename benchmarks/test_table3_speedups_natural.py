"""Bench: regenerate paper Table III (BGPC speedups, natural order)."""

from benchmarks.conftest import run_and_render
from repro.bench.experiments import table3


def test_table3(benchmark, scale):
    result = run_and_render(benchmark, table3.run, scale)
    raw = result.data
    t16 = {alg: vals["speedups"][-1] for alg, vals in raw.items()}
    # N1-N2 is the overall winner at every scale.
    assert t16["N1-N2"] == max(t16.values())
    # Color quality: N1-N2 pays only a small premium (paper: +8%).
    assert raw["N1-N2"]["colors"] < 1.25
    if scale != "tiny":
        # The full paper ordering needs parallel slackness, which the tiny
        # instances (hundreds of vertices on 16 threads) do not have.
        assert t16["V-V"] < t16["V-V-64"]
        assert t16["V-V-64"] < t16["V-N2"]
        assert t16["V-N2"] < t16["N1-N2"]
