"""Bench: regenerate paper Table V (D2GC speedups, symmetric instances)."""

from benchmarks.conftest import run_and_render
from repro.bench.experiments import table5


def test_table5(benchmark, scale):
    result = run_and_render(benchmark, table5.run, scale)
    raw = result.data
    t16 = {alg: vals["speedups"][-1] for alg, vals in raw.items()}
    # Paper shape: N1-N2 fastest, roughly 2x over V-V-64D at 16 threads.
    assert t16["N1-N2"] == max(t16.values())
    if scale != "tiny":
        assert raw["N1-N2"]["over_64d"] > 1.2
