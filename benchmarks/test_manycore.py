"""Bench: manycore projection (paper section VIII direction)."""

from benchmarks.conftest import run_and_render
from repro.bench.experiments import manycore


def test_manycore(benchmark, scale):
    result = run_and_render(benchmark, manycore.run, scale)
    data = result.data
    # Net tasks deviate less than vertex tasks on the square instances.
    for name in ("channel", "copapers"):
        v_cv, n_cv = data[name]["task_cv"]
        assert n_cv <= v_cv
    # N1-N2 stays ahead of V-V-64D at every core count on every instance.
    for name, entry in data.items():
        for a, b in zip(entry["speedups"]["N1-N2"], entry["speedups"]["V-V-64D"]):
            assert a > b
