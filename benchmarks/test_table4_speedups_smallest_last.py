"""Bench: regenerate paper Table IV (BGPC speedups, smallest-last order)."""

from benchmarks.conftest import run_and_render
from repro.bench.experiments import table4


def test_table4(benchmark, scale):
    result = run_and_render(benchmark, table4.run, scale)
    raw = result.data
    t16 = {alg: vals["speedups"][-1] for alg, vals in raw.items()}
    assert t16["N1-N2"] == max(t16.values())
    if scale != "tiny":
        assert t16["V-V"] < t16["N1-N2"]
