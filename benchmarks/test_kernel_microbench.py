"""Micro-benchmarks of the hot building blocks (host-side throughput).

Unlike the experiment benches (which report *simulated* cycles), these
measure real wall-clock of the Python implementation itself: forbidden-set
ops, the two-hop cache build, one engine phase, and a full coloring run.
Useful for tracking host-side performance regressions of the simulator.
"""

import numpy as np

from repro import color_bgpc, sequential_bgpc
from repro.core.forbidden import ForbiddenSet
from repro.datasets import load_dataset, random_bipartite
from repro.graph.twohop import bgpc_twohop


def test_forbidden_set_throughput(benchmark):
    forb = ForbiddenSet(256)
    batch = np.random.default_rng(0).integers(0, 200, size=64)

    def work():
        for _ in range(100):
            forb.begin()
            forb.add_many(batch)
            forb.first_fit()

    benchmark(work)


def test_twohop_build(benchmark):
    bg = random_bipartite(400, 600, density=0.02, seed=1)

    def work():
        import repro.graph.twohop as mod

        mod._bgpc_cache.clear()
        return bgpc_twohop(bg)

    two = benchmark(work)
    assert two is not None


def test_sequential_coloring_throughput(benchmark, scale):
    bg = load_dataset("kkt", scale)
    result = benchmark.pedantic(lambda: sequential_bgpc(bg), rounds=2, iterations=1)
    assert result.num_colors > 0


def test_parallel_coloring_throughput(benchmark, scale):
    bg = load_dataset("kkt", scale)
    result = benchmark.pedantic(
        lambda: color_bgpc(bg, algorithm="N1-N2", threads=16),
        rounds=2,
        iterations=1,
    )
    assert result.num_colors > 0
