"""Bench: design-choice ablations beyond the paper (DESIGN.md section 5)."""

from benchmarks.conftest import run_and_render
from repro.bench.experiments import ablations


def test_ablations(benchmark, scale):
    result = run_and_render(benchmark, ablations.run, scale, threads=16)
    window_rows = [r for r in result.rows if r[0] == "race-window"]
    conflicts = [r[4] for r in window_rows]
    # Conflicts must grow with the store-visibility window.
    assert conflicts == sorted(conflicts)
