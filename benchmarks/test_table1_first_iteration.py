"""Bench: regenerate paper Table I (|W_next| after the first iteration)."""

from benchmarks.conftest import run_and_render
from repro.bench.experiments import table1


def test_table1(benchmark, scale):
    result = run_and_render(benchmark, table1.run, scale, threads=16)
    assert result.data["shape_ok"], "Alg 6 refinements must reduce |W_next|"
