"""Wall-clock microbench: NumPy fast path vs. the per-task simulator path.

These are *host* wall-clock measurements (like test_kernel_microbench, not
the simulated-cycle experiment benches): the point of the NumPy backend is
to run the speculative template at hardware speed, so here we time it
against executing the same template task-by-task on the simulated machine,
on the largest synthetic dataset (``copapers_like``: most edges of the
eight generators).

Each contender colors a *freshly built* graph, so the simulator cannot
amortize its flattened two-hop cache across trials — that is the honest
cold-start comparison a user hits when coloring a new instance.

The ISSUE-1 acceptance bar is asserted at the bottom: the NumPy backend's
speculative mode must be at least 5x faster than the per-task simulator
path end to end.
"""

import time

import numpy as np

from repro.core import color_bgpc, fastpath_color_bgpc, sequential_bgpc
from repro.core.validate import validate_bgpc
from repro.datasets.synthetic import copapers_like


def _time_coloring(run, builds=1):
    """Best-of-``builds`` wall time; the graph is rebuilt per trial."""
    best = float("inf")
    result = None
    for _ in range(builds):
        bg = copapers_like()
        t0 = time.perf_counter()
        result = run(bg)
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_fastpath_speculative_vs_simulator(benchmark):
    sim_time, sim_result = _time_coloring(
        lambda bg: color_bgpc(bg, algorithm="N1-N2", threads=16), builds=1
    )
    seq_time, seq_result = _time_coloring(lambda bg: sequential_bgpc(bg), builds=1)
    fast_time, fast_result = _time_coloring(
        lambda bg: fastpath_color_bgpc(bg, mode="speculative"), builds=3
    )
    exact_time, exact_result = _time_coloring(
        lambda bg: fastpath_color_bgpc(bg, mode="exact"), builds=3
    )

    bg = copapers_like()
    for result in (sim_result, fast_result, exact_result):
        validate_bgpc(bg, result.colors)
    assert np.array_equal(exact_result.colors, seq_result.colors)

    speedup_vs_sim = sim_time / fast_time
    print()
    print("copapers_like wall-clock (cold graph per trial):")
    print(f"  simulator N1-N2 (per-task): {sim_time * 1000:8.1f} ms")
    print(f"  simulator sequential:       {seq_time * 1000:8.1f} ms")
    print(f"  numpy speculative:          {fast_time * 1000:8.1f} ms "
          f"({fast_result.num_iterations} rounds, "
          f"{fast_result.num_colors} colors)")
    print(f"  numpy exact:                {exact_time * 1000:8.1f} ms "
          f"({exact_result.num_colors} colors, byte-identical)")
    print(f"  speculative speedup vs per-task simulator: {speedup_vs_sim:.1f}x")

    # ISSUE-1 acceptance: numpy backend >= 5x the per-task simulator path.
    assert speedup_vs_sim >= 5.0, (
        f"numpy speculative backend only {speedup_vs_sim:.2f}x faster than "
        f"the per-task simulator path (need >= 5x)"
    )

    # record the fast path as the benchmark's timed round
    benchmark.pedantic(
        lambda: fastpath_color_bgpc(copapers_like(), mode="speculative"),
        rounds=2,
        iterations=1,
    )
