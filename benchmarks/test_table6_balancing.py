"""Bench: regenerate paper Table VI (balancing heuristics impact)."""

from benchmarks.conftest import run_and_render
from repro.bench.experiments import table6


def test_table6(benchmark, scale):
    result = run_and_render(benchmark, table6.run, scale, threads=16)
    raw = result.data
    for alg in ("V-N2", "N1-N2"):
        # Balancing is (nearly) free and flattens the cardinality profile.
        assert raw[f"{alg}-B1"]["time"] < 1.15
        assert raw[f"{alg}-B1"]["std"] < 1.0
        assert raw[f"{alg}-B2"]["std"] < 1.0
