"""Bench: regenerate paper Figure 1 (per-iteration phase breakdown)."""

from benchmarks.conftest import run_and_render
from repro.bench.experiments import figure1


def test_figure1(benchmark, scale):
    result = run_and_render(benchmark, figure1.run, scale, threads=16)
    series = result.data["series"]
    # Paper take-away 4: net-based coloring wins the first round big.
    n1n2_round1 = sum(series["N1-N2"][0])
    v64d_round1 = sum(series["V-V-64D"][0])
    assert n1n2_round1 < v64d_round1
