"""Benchmark configuration.

Scale selection: set ``REPRO_BENCH_SCALE`` to ``tiny`` / ``small`` /
``medium`` (default ``small``).  The full small-scale harness regenerates
every paper table and figure in a few minutes on one core; ``tiny`` is for
quick sanity runs.

Each benchmark prints the regenerated table (run pytest with ``-s`` to see
them) and records one timed round via ``benchmark.pedantic`` — the
experiments are deterministic, so repeated rounds would only re-measure the
same computation.
"""

import os

import pytest

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def scale() -> str:
    return SCALE


def run_and_render(benchmark, run_fn, scale, **kwargs):
    """Time one regeneration of an experiment and print its table."""
    result = benchmark.pedantic(
        lambda: run_fn(scale=scale, **kwargs), rounds=1, iterations=1
    )
    print()
    print(result.render())
    return result
