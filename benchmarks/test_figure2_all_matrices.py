"""Bench: regenerate paper Figure 2 (all matrices x algorithms x threads).

This is the expensive sweep; Tables III/IV consume its cached runs, so it
runs first in file order (pytest collects alphabetically: figure2 < table3).
"""

from benchmarks.conftest import run_and_render
from repro.bench.experiments import figure2


def test_figure2(benchmark, scale):
    result = run_and_render(benchmark, figure2.run, scale)
    # 8 matrices x (8 algorithms + 1 sequential row)
    assert len(result.rows) == 8 * 9
